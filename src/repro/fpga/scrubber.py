"""Configuration scrubbing: SEU detection and repair via readback.

A classic application of the R/W configuration access the paper's
Sec. III-C enables: radiation-induced single-event upsets (SEUs) flip
bits in the configuration memory; a scrubber periodically reads frames
back through the ICAP, compares them against golden data, and rewrites
corrupted frames.  This module provides:

* :func:`inject_seu` — flip configuration bits (fault injection),
* :class:`FrameScrubber` — readback-compare-repair over an RP using
  the HWICAP driver's readback path and targeted frame rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.config_memory import ConfigMemory
from repro.fpga.frames import FrameAddress
from repro.fpga.partition import ReconfigurablePartition


def inject_seu(config_memory: ConfigMemory, far: FrameAddress,
               word_index: int, bit: int) -> None:
    """Flip one configuration bit (fault injection for testing)."""
    frame = config_memory.read_frame(far)
    if not 0 <= word_index < len(frame):
        raise ConfigurationError(f"word index {word_index} outside frame")
    frame[word_index] ^= np.uint32(1 << bit)
    config_memory.write_frames(far, frame)


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    frames_checked: int = 0
    frames_corrupted: int = 0
    frames_repaired: int = 0
    corrupted_fars: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.frames_corrupted == 0


class FrameScrubber:
    """Readback-compare-repair over one partition.

    ``golden`` is the expected frame payload (what the module's partial
    bitstream carried); repair rewrites only the corrupted frames
    through the configuration memory — on real hardware this would be
    a per-frame partial bitstream write through the same ICAP.
    """

    def __init__(self, rp: ReconfigurablePartition,
                 golden: np.ndarray) -> None:
        if len(golden) != rp.frame_words:
            raise ConfigurationError(
                f"golden payload of {len(golden)} words does not match "
                f"RP footprint of {rp.frame_words}"
            )
        self.rp = rp
        self.golden = np.asarray(golden, dtype=np.uint32)
        self.passes = 0

    def scrub(self,
              read_frames: Callable[[FrameAddress, int], np.ndarray],
              write_frames: Callable[[FrameAddress, np.ndarray], None], *,
              repair: bool = True, chunk_frames: int = 16) -> ScrubReport:
        """One scrub pass.

        ``read_frames(far, count) -> np.ndarray`` and
        ``write_frames(far, words)`` abstract the access path, so the
        scrubber runs identically over the backdoor (fast model) or the
        HWICAP driver's timed readback (integration tests).
        """
        self.passes += 1
        report = ScrubReport()
        wpf = self.rp.device.words_per_frame
        for start in range(0, self.rp.frames, chunk_frames):
            count = min(chunk_frames, self.rp.frames - start)
            far = self.rp.base_far.advance(start)
            actual = np.asarray(read_frames(far, count), dtype=np.uint32)
            expected = self.golden[start * wpf : (start + count) * wpf]
            report.frames_checked += count
            if np.array_equal(actual, expected):
                continue
            # locate the corrupted frames within the chunk
            diff = (actual != expected).reshape(count, wpf).any(axis=1)
            for frame_offset in np.flatnonzero(diff):
                index = start + int(frame_offset)
                frame_far = self.rp.base_far.advance(index)
                report.frames_corrupted += 1
                report.corrupted_fars.append(frame_far.encode())
                if repair:
                    lo = index * wpf
                    write_frames(frame_far, self.golden[lo : lo + wpf])
                    report.frames_repaired += 1
        return report
