"""Bitstream container and offline parser.

A bitstream is a sequence of 32-bit configuration words.  On disk / SD
card / DDR it is serialized big-endian per word (the Xilinx ``.bin``
convention); the AXIS2ICAP hardware re-assembles 32-bit words from the
byte stream in that same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import BitstreamError
from repro.fpga.packets import (
    BUS_WIDTH_DETECT,
    BUS_WIDTH_SYNC,
    Command,
    ConfigPacket,
    ConfigRegister,
    DUMMY_WORD,
    NOOP_WORD,
    Opcode,
    SYNC_WORD,
)
from repro.utils.crc import crc32_config_word


@dataclass
class Bitstream:
    """A (partial) bitstream as an array of configuration words."""

    words: np.ndarray

    def __post_init__(self) -> None:
        self.words = np.asarray(self.words, dtype=np.uint32)

    @property
    def nbytes(self) -> int:
        return int(self.words.size) * 4

    def to_bytes(self) -> bytes:
        """Serialize big-endian per 32-bit word (.bin convention)."""
        return self.words.astype(">u4").tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitstream":
        if len(data) % 4:
            raise BitstreamError("bitstream length must be a multiple of 4")
        return cls(np.frombuffer(data, dtype=">u4").astype(np.uint32))

    def __len__(self) -> int:
        return int(self.words.size)


@dataclass
class ParsedBitstream:
    """Result of structurally parsing a bitstream."""

    idcode: Optional[int] = None
    far: Optional[int] = None
    frame_words: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint32))
    commands: List[Command] = field(default_factory=list)
    crc_written: Optional[int] = None
    crc_computed: Optional[int] = None
    register_writes: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def crc_ok(self) -> bool:
        return self.crc_written is not None and self.crc_written == self.crc_computed

    @property
    def desynced(self) -> bool:
        return Command.DESYNC in self.commands


def parse_bitstream(bitstream: Bitstream) -> ParsedBitstream:
    """Structurally parse a bitstream (offline; no timing).

    Mirrors the ICAP's packet state machine so tests can check that the
    generator and the ICAP agree on the format.
    """
    words = bitstream.words
    result = ParsedBitstream()
    i = 0
    n = int(words.size)
    # preamble: dummies / bus-width sequence until the sync word
    synced = False
    while i < n:
        word = int(words[i])
        i += 1
        if word == SYNC_WORD:
            synced = True
            break
        if word not in (DUMMY_WORD, BUS_WIDTH_SYNC, BUS_WIDTH_DETECT, 0x0000_0000):
            raise BitstreamError(f"unexpected preamble word {word:#010x} at {i - 1}")
    if not synced:
        raise BitstreamError("no sync word found")

    crc = 0
    frame_chunks: List[np.ndarray] = []
    pending_type1_reg: Optional[int] = None
    while i < n:
        word = int(words[i])
        i += 1
        if word == NOOP_WORD:
            continue
        header = ConfigPacket.decode(word)
        if header.packet_type == 1:
            reg = header.register
            count = header.word_count
            pending_type1_reg = reg
        else:
            if pending_type1_reg is None:
                raise BitstreamError("type-2 packet without preceding type-1")
            reg = pending_type1_reg
            count = header.word_count
        if header.opcode != Opcode.WRITE or count == 0:
            continue
        if i + count > n:
            raise BitstreamError("packet payload runs past end of bitstream")
        payload = words[i : i + count]
        i += count
        if reg == ConfigRegister.FDRI:
            frame_chunks.append(payload)
            # bulk CRC update over the frame data
            for value in payload.tolist():
                crc = crc32_config_word(crc, value, reg)
            continue
        value = int(payload[-1])
        result.register_writes.append((reg, value))
        if reg == ConfigRegister.CRC:
            result.crc_written = value
            result.crc_computed = crc
            crc = 0  # writing CRC resets the running value
            continue
        if reg == ConfigRegister.CMD:
            command = Command(value)
            result.commands.append(command)
            if command == Command.RCRC:
                crc = 0
                continue
            if command == Command.DESYNC:
                break
        if reg == ConfigRegister.IDCODE:
            result.idcode = value
        if reg == ConfigRegister.FAR:
            result.far = value
        for item in payload.tolist():
            crc = crc32_config_word(crc, item, reg)

    if frame_chunks:
        result.frame_words = np.concatenate(frame_chunks)
    return result
