"""Reconfigurable partition (RP) and module (RM) descriptors.

An RP is a floorplanned rectangle of device columns plus the resource
budget it offers to hosted modules; an RM is one synthesized function
(e.g. a Sobel filter) that fits the budget and ships as a partial
bitstream.  The reference RP reproduces the paper's configuration:
budget 3200 LUT / 6400 FF / 30 BRAM / 20 DSP (Table III) and a frame
footprint whose partial bitstream is exactly 650 892 bytes (Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BitstreamError
from repro.fpga.device import FpgaDevice, KINTEX7_325T
from repro.fpga.frames import FrameAddress


@dataclass(frozen=True)
class RpGeometry:
    """A pblock rectangle: column counts per type, spanning ``rows``."""

    clb_cols: int
    bram_cols: int
    dsp_cols: int
    rows: int = 1

    def frames(self, device: FpgaDevice) -> int:
        return device.frames_for_columns(
            self.clb_cols, self.bram_cols, self.dsp_cols, self.rows
        )

    def scaled(self, factor: int) -> "RpGeometry":
        """Grow the rectangle vertically (more clock-region rows)."""
        return RpGeometry(self.clb_cols, self.bram_cols, self.dsp_cols,
                          self.rows * factor)


@dataclass(frozen=True)
class ResourceBudget:
    """User resources an RP offers to its modules."""

    luts: int
    ffs: int
    brams: int
    dsps: int

    def fits(self, other: "ResourceBudget") -> bool:
        return (other.luts <= self.luts and other.ffs <= self.ffs
                and other.brams <= self.brams and other.dsps <= self.dsps)


@dataclass
class ReconfigurableModule:
    """One hardware function deliverable as a partial bitstream."""

    name: str
    resources: ResourceBudget
    #: key selecting the behavioural model in acceleration mode
    #: (e.g. "sobel"); None for pure-reconfiguration test modules
    behavior: Optional[str] = None
    #: frame geometry the streaming RM is built for; the case-study
    #: filters process 512x512 (Table IV), smaller tiles let the
    #: scheduler serve thousands of requests per simulated second
    frame_width: int = 512
    frame_height: int = 512

    def utilization_of(self, rp_budget: ResourceBudget) -> dict[str, float]:
        """Percent utilization of the RP budget (Table III footnote)."""
        return {
            "luts": 100.0 * self.resources.luts / rp_budget.luts,
            "ffs": 100.0 * self.resources.ffs / rp_budget.ffs,
            "brams": 100.0 * self.resources.brams / rp_budget.brams,
            "dsps": 100.0 * self.resources.dsps / rp_budget.dsps,
        }


@dataclass
class ReconfigurablePartition:
    """A floorplanned partition hosting swappable modules."""

    name: str
    geometry: RpGeometry
    budget: ResourceBudget
    base_far: FrameAddress = field(default_factory=FrameAddress)
    device: FpgaDevice = KINTEX7_325T
    loaded_module: Optional[ReconfigurableModule] = None
    decoupled: bool = False

    @property
    def frames(self) -> int:
        return self.geometry.frames(self.device)

    @property
    def frame_words(self) -> int:
        return self.frames * self.device.words_per_frame

    def check_fits(self, module: ReconfigurableModule) -> None:
        if not self.budget.fits(module.resources):
            raise BitstreamError(
                f"module {module.name!r} does not fit RP {self.name!r}: "
                f"needs {module.resources}, budget {self.budget}"
            )

    def contains_far(self, far: FrameAddress, count: int = 1) -> bool:
        """True when [far, far+count) lies inside this partition."""
        start = far.linear_index()
        base = self.base_far.linear_index()
        return base <= start and start + count <= base + self.frames


#: The paper's reference RP (Sec. IV-A / Table III): resource budget as
#: reported, rectangle chosen so the partial bitstream is 650 892 bytes.
REFERENCE_RP_GEOMETRY = RpGeometry(clb_cols=25, bram_cols=4, dsp_cols=3, rows=1)
REFERENCE_RP_BUDGET = ResourceBudget(luts=3200, ffs=6400, brams=30, dsps=20)


def make_reference_rp(name: str = "rp0",
                      device: FpgaDevice = KINTEX7_325T) -> ReconfigurablePartition:
    """The RP used throughout the paper's evaluation."""
    return ReconfigurablePartition(
        name=name,
        geometry=REFERENCE_RP_GEOMETRY,
        budget=REFERENCE_RP_BUDGET,
        base_far=FrameAddress(block_type=0, row=1, column=10, minor=0),
        device=device,
    )
