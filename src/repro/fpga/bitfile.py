"""Xilinx ``.bit`` container format (header + raw bitstream words).

Vivado's ``.bit`` files wrap the configuration words in a small
tag-length-value header carrying the design name, part, date and time;
``.bin`` files are the raw words only.  The SD card in the paper's
flow may carry either; this module reads and writes the ``.bit``
wrapper so the pbit store can ingest both.

Header layout (de-facto standard, not officially documented):

* a 13-byte magic field,
* records keyed 'a' (design name), 'b' (part), 'c' (date), 'd' (time),
  each a big-endian u16 length + NUL-terminated string,
* record 'e': big-endian u32 payload length, then the raw words.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import BitstreamError
from repro.fpga.bitstream import Bitstream

_MAGIC = bytes([0x00, 0x09, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0,
                0x0F, 0xF0, 0x00, 0x00, 0x01])


@dataclass(frozen=True)
class BitFileHeader:
    """Metadata carried by a .bit container."""

    design_name: str = "rvcap_rm;UserID=0XFFFFFFFF"
    part_name: str = "7k325tffg900"
    date: str = "2021/05/17"
    time: str = "12:00:00"


def _pack_string_record(key: bytes, text: str) -> bytes:
    payload = text.encode("ascii") + b"\x00"
    return key + struct.pack(">H", len(payload)) + payload


def write_bit_file(bitstream: Bitstream,
                   header: BitFileHeader | None = None) -> bytes:
    """Serialize a bitstream into the .bit container format."""
    header = header or BitFileHeader()
    payload = bitstream.to_bytes()
    out = bytearray()
    out += _MAGIC
    out += _pack_string_record(b"a", header.design_name)
    out += _pack_string_record(b"b", header.part_name)
    out += _pack_string_record(b"c", header.date)
    out += _pack_string_record(b"d", header.time)
    out += b"e" + struct.pack(">I", len(payload))
    out += payload
    return bytes(out)


def _read_string_record(data: bytes, offset: int,
                        expected_key: bytes) -> tuple[str, int]:
    if data[offset : offset + 1] != expected_key:
        raise BitstreamError(
            f"expected .bit record {expected_key!r} at offset {offset}"
        )
    (length,) = struct.unpack_from(">H", data, offset + 1)
    start = offset + 3
    text = data[start : start + length].rstrip(b"\x00").decode("ascii",
                                                               "replace")
    return text, start + length


def parse_bit_file(data: bytes) -> tuple[BitFileHeader, Bitstream]:
    """Parse a .bit container; returns (header, bitstream)."""
    if not data.startswith(_MAGIC):
        raise BitstreamError("missing .bit magic header")
    offset = len(_MAGIC)
    design, offset = _read_string_record(data, offset, b"a")
    part, offset = _read_string_record(data, offset, b"b")
    date, offset = _read_string_record(data, offset, b"c")
    time, offset = _read_string_record(data, offset, b"d")
    if data[offset : offset + 1] != b"e":
        raise BitstreamError("missing .bit payload record")
    (length,) = struct.unpack_from(">I", data, offset + 1)
    payload = data[offset + 5 : offset + 5 + length]
    if len(payload) != length:
        raise BitstreamError(
            f".bit payload truncated: header says {length}, "
            f"got {len(payload)}"
        )
    header = BitFileHeader(design_name=design, part_name=part,
                           date=date, time=time)
    return header, Bitstream.from_bytes(payload)


def is_bit_file(data: bytes) -> bool:
    """Quick sniff: does this look like a .bit container?"""
    return data.startswith(_MAGIC)


def extract_bitstream(data: bytes) -> Bitstream:
    """Accept either a raw .bin or a .bit container."""
    if is_bit_file(data):
        return parse_bit_file(data)[1]
    return Bitstream.from_bytes(data)
