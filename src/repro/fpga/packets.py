"""7-series configuration packet protocol (UG470 chapter 5)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import BitstreamError

SYNC_WORD = 0xAA99_5566
DUMMY_WORD = 0xFFFF_FFFF
BUS_WIDTH_SYNC = 0x0000_00BB
BUS_WIDTH_DETECT = 0x1122_0044
NOOP_WORD = 0x2000_0000


class ConfigRegister(enum.IntEnum):
    """Configuration register addresses."""

    CRC = 0x00
    FAR = 0x01
    FDRI = 0x02
    FDRO = 0x03
    CMD = 0x04
    CTL0 = 0x05
    MASK = 0x06
    STAT = 0x07
    LOUT = 0x08
    COR0 = 0x09
    MFWR = 0x0A
    CBC = 0x0B
    IDCODE = 0x0C
    AXSS = 0x0D
    COR1 = 0x0E
    WBSTAR = 0x10
    TIMER = 0x11
    BSPI = 0x1F


class Command(enum.IntEnum):
    """CMD register command codes."""

    NULL = 0x0
    WCFG = 0x1
    MFW = 0x2
    DGHIGH = 0x3   # also LFRM
    RCFG = 0x4
    START = 0x5
    RCRC = 0x7
    AGHIGH = 0x8
    SWITCH = 0x9
    GRESTORE = 0xA
    SHUTDOWN = 0xB
    DESYNC = 0xD
    IPROG = 0xF


class Opcode(enum.IntEnum):
    NOP = 0
    READ = 1
    WRITE = 2


@dataclass(frozen=True)
class ConfigPacket:
    """A decoded type-1 or type-2 packet header."""

    packet_type: int
    opcode: Opcode
    register: int
    word_count: int

    def encode(self) -> int:
        if self.packet_type == 1:
            if self.word_count >= (1 << 11):
                raise BitstreamError("type-1 word count exceeds 11 bits")
            return (
                (1 << 29)
                | (int(self.opcode) << 27)
                | ((self.register & 0x1F) << 13)
                | self.word_count
            )
        if self.packet_type == 2:
            if self.word_count >= (1 << 27):
                raise BitstreamError("type-2 word count exceeds 27 bits")
            return (2 << 29) | (int(self.opcode) << 27) | self.word_count
        raise BitstreamError(f"unknown packet type {self.packet_type}")

    @classmethod
    def decode(cls, word: int) -> "ConfigPacket":
        packet_type = (word >> 29) & 0x7
        try:
            opcode = Opcode((word >> 27) & 0x3)
        except ValueError as exc:
            raise BitstreamError(
                f"reserved opcode in packet header {word:#010x}") from exc
        if packet_type == 1:
            return cls(1, opcode, (word >> 13) & 0x1F, word & 0x7FF)
        if packet_type == 2:
            return cls(2, opcode, 0, word & 0x7FF_FFFF)
        raise BitstreamError(f"invalid packet header {word:#010x}")


def type1_write(register: int, word_count: int) -> int:
    return ConfigPacket(1, Opcode.WRITE, register, word_count).encode()


def type1_nop() -> int:
    return NOOP_WORD


def type2_write(word_count: int) -> int:
    return ConfigPacket(2, Opcode.WRITE, 0, word_count).encode()


def type1_read(register: int, word_count: int) -> int:
    return ConfigPacket(1, Opcode.READ, register, word_count).encode()


def type2_read(word_count: int) -> int:
    return ConfigPacket(2, Opcode.READ, 0, word_count).encode()
