"""Configuration memory: the frame store behind the ICAP.

Frames are stored as numpy ``uint32`` arrays keyed by linear frame
index, so a 1600-frame partial bitstream lands as ~1600 array stores
instead of 160k Python-level word writes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.device import FpgaDevice
from repro.fpga.frames import FrameAddress


class ConfigMemory:
    """Frame-addressed configuration memory of one device."""

    def __init__(self, device: FpgaDevice) -> None:
        self.device = device
        self._frames: Dict[int, np.ndarray] = {}
        self.frames_written = 0
        self.last_far: Optional[FrameAddress] = None

    def write_frames(self, far: FrameAddress, words: np.ndarray) -> FrameAddress:
        """Write one or more consecutive frames starting at ``far``.

        ``words`` length must be a multiple of the device frame size.
        Returns the frame address following the last written frame.
        """
        wpf = self.device.words_per_frame
        if len(words) % wpf:
            raise ConfigurationError(
                f"frame data of {len(words)} words is not a multiple of "
                f"{wpf}-word frames"
            )
        count = len(words) // wpf
        base = far.linear_index()
        data = np.asarray(words, dtype=np.uint32)
        for i in range(count):
            self._frames[base + i] = data[i * wpf : (i + 1) * wpf].copy()
        self.frames_written += count
        self.last_far = far.advance(count)
        return self.last_far

    def read_frame(self, far: FrameAddress) -> np.ndarray:
        """Read back one frame (zeros when never configured)."""
        frame = self._frames.get(far.linear_index())
        if frame is None:
            return np.zeros(self.device.words_per_frame, dtype=np.uint32)
        return frame.copy()

    def read_frames(self, far: FrameAddress, count: int) -> np.ndarray:
        """Read ``count`` consecutive frames starting at ``far``."""
        base = far.linear_index()
        wpf = self.device.words_per_frame
        out = np.zeros(count * wpf, dtype=np.uint32)
        for i in range(count):
            frame = self._frames.get(base + i)
            if frame is not None:
                out[i * wpf : (i + 1) * wpf] = frame
        return out

    @property
    def configured_frames(self) -> int:
        return len(self._frames)

    def clear(self) -> None:
        self._frames.clear()
        self.frames_written = 0
        self.last_far = None
