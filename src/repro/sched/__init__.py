"""Multi-tenant DPR request scheduling (see docs/SCHEDULER.md).

The package layers a serving model over the driver stack:

* :mod:`repro.sched.request` — the swap-request/outcome data model;
* :mod:`repro.sched.cache` — LRU demand-paging of partial bitstreams
  into a DDR arena (repeat swaps skip the SD card);
* :mod:`repro.sched.scheduler` — the asyncio EDF + same-module-batching
  arbiter of the single ICAP port;
* :mod:`repro.sched.workload` — synthetic Poisson/Zipf request streams
  and the small-RP serving platform;
* :mod:`repro.sched.replay` — trace replay and report generation for
  ``repro serve`` / ``repro sched-bench``.
"""

from repro.sched.cache import BitstreamCache, CacheStats, sd_load_cycles
from repro.sched.replay import (
    ReplayReport,
    bench,
    power_sweep,
    replay,
    summarize,
    sweep,
)
from repro.sched.request import (
    CANCELLED,
    COMPLETED,
    DROPPED,
    FAILED,
    REJECTED,
    TIMED_OUT,
    RequestOutcome,
    SwapRequest,
)
from repro.sched.scheduler import BitstreamRejected, DprScheduler
from repro.sched.workload import (
    WorkloadSpec,
    build_sched_soc,
    load_trace,
    make_cache,
    module_names,
    save_trace,
    synthesize,
)

__all__ = [
    "BitstreamCache",
    "CacheStats",
    "sd_load_cycles",
    "ReplayReport",
    "bench",
    "replay",
    "summarize",
    "sweep",
    "power_sweep",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "TIMED_OUT",
    "DROPPED",
    "REJECTED",
    "RequestOutcome",
    "SwapRequest",
    "BitstreamRejected",
    "DprScheduler",
    "WorkloadSpec",
    "build_sched_soc",
    "make_cache",
    "module_names",
    "synthesize",
    "save_trace",
    "load_trace",
]
