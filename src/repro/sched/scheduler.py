"""Asyncio DPR scheduler: EDF arbitration of the single ICAP port.

The scheduler is the request-serving layer the ROADMAP's multi-tenant
item calls for: tenants :meth:`~DprScheduler.submit` streams of
:class:`~repro.sched.request.SwapRequest` and get back futures that
resolve to :class:`~repro.sched.request.RequestOutcome`.  One arbiter
task owns the fabric:

* **EDF** — among requests whose arrival time has passed, the earliest
  absolute deadline wins the ICAP port;
* **same-module batching** — every other eligible request for the
  winner's module rides the same partition residency (deadline order,
  bounded by ``batch_limit``), so one reconfiguration amortizes over
  the whole batch;
* **bitstream cache** — the swap takes its descriptor from the
  :class:`~repro.sched.cache.BitstreamCache`, so only cold modules pay
  the SD fault; requests for the already-resident module skip the DPR
  entirely.

Time is *simulated* time throughout: the arbiter advances the SoC's
clock to the next arrival when idle and otherwise lets the driver stack
advance it, so a replay is deterministic and wall-clock independent.
The asyncio layer models request concurrency (many tenants in flight),
not hardware parallelism — while a batch holds the ICAP lock the event
loop is busy exactly like the one physical configuration port is.

Failed reconfigurations are retried through the driver's abort/recover
path up to ``max_retries`` times; a batch that exhausts its retries
fails its requests in-band (``status="failed"``) and the scheduler
keeps serving.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, Dict, List, Optional, TYPE_CHECKING, Tuple

import numpy as np

from repro.drivers.manager import ReconfigurationManager
from repro.drivers.rvcap_driver import ReconfigResult
from repro.errors import ControllerError, SchedulerError
from repro.power.governor import PowerGovernor
from repro.power.profile import DEFAULT_PROFILE, PowerProfile
from repro.sched.cache import BitstreamCache
from repro.sched.request import (
    CANCELLED,
    COMPLETED,
    DROPPED,
    FAILED,
    REJECTED,
    TIMED_OUT,
    RequestOutcome,
    SwapRequest,
)

if TYPE_CHECKING:
    from repro.obs import Observability
    from repro.sim.kernel import Simulator
    from repro.soc.soc import Soc

#: span/metric track name
TRACK = "sched"

_PENDING = 0
_CLAIMED = 1
_DONE = 2


class BitstreamRejected(SchedulerError):
    """The admission verifier refused a module's partial bitstream.

    Raised *before* the driver touches the ICAP; the scheduler serves
    it in-band as ``status="rejected"`` so one bad artifact cannot
    wedge a replay or scrub the partition.
    """

    def __init__(self, module: str, messages: List[str]) -> None:
        detail = "; ".join(messages[:3])
        if len(messages) > 3:
            detail += f" (+{len(messages) - 3} more)"
        super().__init__(
            f"bitstream for module {module!r} failed verification: "
            f"{detail}")
        self.module = module
        self.messages = messages


class _Entry:
    """Queue bookkeeping for one submitted request."""

    __slots__ = ("request", "future", "seq", "arrival_cycle",
                 "deadline_cycle", "state")

    def __init__(self, request: SwapRequest, future: "asyncio.Future[RequestOutcome]",
                 seq: int, freq_hz: float) -> None:
        self.request = request
        self.future = future
        self.seq = seq
        self.arrival_cycle = int(request.arrival_us * freq_hz / 1e6)
        self.deadline_cycle = int(request.deadline_us * freq_hz / 1e6)
        self.state = _PENDING


class DprScheduler:
    """Multi-tenant asyncio front end over one ReconfigurationManager."""

    def __init__(self, manager: ReconfigurationManager, *,
                 cache: Optional[BitstreamCache] = None,
                 batch_limit: int = 64,
                 drop_late: bool = False,
                 max_retries: int = 1,
                 reconfig_mode: str = "interrupt",
                 verify: bool = False,
                 power_profile: Optional[PowerProfile] = None,
                 peak_power_mw: Optional[float] = None,
                 power_window_us: float = 200.0,
                 energy_budgets_nj: Optional[Dict[str, float]] = None) -> None:
        if batch_limit < 1:
            raise SchedulerError("batch_limit must be >= 1")
        if max_retries < 0:
            raise SchedulerError("max_retries must be >= 0")
        self.manager = manager
        self.cache = cache
        self.batch_limit = batch_limit
        self.drop_late = drop_late
        self.max_retries = max_retries
        self.reconfig_mode = reconfig_mode
        #: admission gate: statically verify each module's bitstream
        #: before its first reconfiguration (repro.verify)
        self.verify = verify
        #: verdict memo keyed by (module, ddr address, size) — the
        #: serving path re-loads the same image every cache refill, and
        #: the DDR copy is immutable between placements
        self._verify_memo: Dict[Tuple[str, int, int], List[str]] = {}
        self._freq_hz = manager.soc.sim.freq_hz
        # power accounting is opt-in: asking for a cap or budgets
        # implies the calibrated default profile
        if power_profile is None and (peak_power_mw is not None
                                      or energy_budgets_nj is not None):
            power_profile = DEFAULT_PROFILE
        self.power_profile = power_profile
        self.peak_power_mw = peak_power_mw
        self.energy_budgets_nj: Optional[Dict[str, float]] = (
            dict(energy_budgets_nj) if energy_budgets_nj else None)
        self._governor: Optional[PowerGovernor] = None
        if peak_power_mw is not None:
            self._governor = PowerGovernor(
                peak_power_mw, profile=self.power_profile,
                window_us=power_window_us, freq_hz=self._freq_hz)
        #: modeled energy charged to served requests (nJ)
        self.energy_nj_total = 0.0
        self.tenant_energy_nj: Dict[str, float] = {}
        #: not-yet-eligible entries, keyed by arrival
        self._arrivals: List[Tuple[int, int, _Entry]] = []
        #: eligible entries, keyed by deadline (EDF order)
        self._ready: List[Tuple[int, int, _Entry]] = []
        #: eligible entries per module, keyed by deadline (batch pulls)
        self._by_module: Dict[str, List[Tuple[int, int, _Entry]]] = {}
        self._pending_count = 0
        self._seq = 0
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._task: Optional["asyncio.Task[None]"] = None
        self._stopping = False
        #: cycles the ICAP spent programming (utilization numerator)
        self.icap_busy_cycles = 0
        self._started_cycle: Optional[int] = None
        self._payload_frames: Dict[Tuple[int, int], np.ndarray] = {}
        #: instruments resolved once per attached Observability — the
        #: serving path must not pay a registry lookup (name formatting
        #: plus label-tuple sort) per event
        self._instrument_obs: Optional[Any] = None
        self._instruments: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def soc(self) -> "Soc":
        return self.manager.soc

    @property
    def sim(self) -> "Simulator":
        return self.manager.soc.sim

    @property
    def obs(self) -> "Optional[Observability]":
        return self.manager.soc.obs

    @property
    def queue_depth(self) -> int:
        return self._pending_count

    def _cycles_to_us(self, cycles: int) -> float:
        return cycles * 1e6 / self._freq_hz

    def _metrics(self, obs: Any) -> Dict[str, Any]:
        """The scheduler's instruments, cached per Observability.

        Registry lookups format the metric name and sort the label
        tuple on every call; the serving path emits several metrics per
        request, so instruments are resolved once and reused until the
        SoC's observability object is swapped.
        """
        if self._instrument_obs is not obs:
            m = obs.metrics
            status_counters = {
                status: m.counter(
                    f"sched_{status}_total",
                    f"requests that finished {status}")
                for status in (COMPLETED, FAILED, TIMED_OUT, DROPPED,
                               CANCELLED, REJECTED)
            }
            self._instruments = {
                "depth": m.gauge("sched_queue_depth",
                                 "requests queued in the scheduler"),
                "requests": m.counter(
                    "sched_requests_total",
                    "requests submitted to the scheduler"),
                "batches": m.counter("sched_batches_total",
                                     "batches serviced"),
                "batch_size": m.histogram("sched_batch_size",
                                          "requests per serviced batch"),
                "reconfigs": m.counter(
                    "sched_reconfigurations_total",
                    "batches that programmed the ICAP"),
                "icap_busy": m.counter(
                    "sched_icap_busy_cycles",
                    "cycles the ICAP spent programming"),
                "td": m.histogram("sched_td_cycles",
                                  "per-swap decision time"),
                "tr": m.histogram("sched_tr_cycles",
                                  "per-swap reconfiguration time"),
                "skips": m.counter(
                    "sched_reconfig_skips_total",
                    "batches served by the already-resident module"),
                "retries": m.counter(
                    "sched_reconfig_retries_total",
                    "reconfigurations retried after a failure"),
                "cancelled": m.counter(
                    "sched_cancelled_total",
                    "requests cancelled before service"),
                "status": status_counters,
                "deadline_misses": m.counter(
                    "sched_deadline_misses_total",
                    "requests that missed their deadline"),
                "latency": m.histogram("sched_latency_cycles",
                                       "arrival-to-completion latency"),
                "queue_wait": m.histogram("sched_queue_wait_cycles",
                                          "arrival-to-service queue wait"),
                "tc": m.histogram("sched_tc_cycles",
                                  "per-request payload compute time"),
            }
            if self.power_profile is not None:
                # power instruments exist only when accounting is on,
                # so plain replays keep their exact metric surface
                self._instruments.update({
                    "energy": m.counter(
                        "sched_energy_nj_total",
                        "modeled energy charged to requests (nJ)"),
                    "energy_tenant": {},
                    "reconfig_energy": m.histogram(
                        "sched_reconfig_energy_nj",
                        "modeled per-batch reconfiguration energy (nJ)"),
                    "power_deferrals": m.counter(
                        "sched_power_deferrals_total",
                        "reconfigurations deferred by the power governor"),
                    "peak_power": m.gauge(
                        "sched_peak_window_power_mw",
                        "max windowed average power attained (mW)",
                        merge_mode="max"),
                })
            self._instrument_obs = obs
        return self._instruments

    def _sample_depth(self) -> None:
        obs = self.obs
        if obs is not None:
            self._metrics(obs)["depth"].set(float(self._pending_count))
            obs.tracer.count("sched.queue_depth", self.sim.now,
                             float(self._pending_count))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Launch the arbiter task (idempotent)."""
        if self._task is None or self._task.done():
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(
                self._arbiter(), name="dpr-arbiter")

    async def aclose(self) -> None:
        """Stop after draining the queue."""
        if self._task is None:
            return
        self._stopping = True
        self._wake.set()
        await self._task
        self._task = None

    async def drain(self) -> None:
        """Wait until every queued request has been resolved."""
        while self._pending_count:
            self._idle.clear()
            await self._idle.wait()

    async def __aenter__(self) -> "DprScheduler":
        await self.start()
        return self

    async def __aexit__(self, *_exc: object) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: SwapRequest) -> "asyncio.Future[RequestOutcome]":
        """Queue a request; the future resolves to its outcome."""
        if self._stopping:
            raise SchedulerError("scheduler is closing")
        if request.module not in self.soc.registered_modules:
            raise SchedulerError(
                f"unknown module {request.module!r}: registered modules "
                f"are {self.soc.registered_modules}")
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError as exc:  # pragma: no cover - usage error
            raise SchedulerError(
                "submit() requires a running event loop") from exc
        future: "asyncio.Future[RequestOutcome]" = loop.create_future()
        entry = _Entry(request, future, self._seq, self._freq_hz)
        self._seq += 1
        heapq.heappush(self._arrivals,
                       (entry.arrival_cycle, entry.seq, entry))
        self._pending_count += 1
        obs = self.obs
        if obs is not None:
            self._metrics(obs)["requests"].inc()
        self._sample_depth()
        self._wake.set()
        return future

    async def submit_and_wait(self, request: SwapRequest) -> RequestOutcome:
        return await self.submit(request)

    # ------------------------------------------------------------------
    # the arbiter
    # ------------------------------------------------------------------
    async def _arbiter(self) -> None:
        while True:
            self._promote_arrivals()
            if not self._ready:
                if self._arrivals:
                    # idle until the earliest pending arrival
                    target = self._arrivals[0][0]
                    if target > self.sim.now:
                        self.sim.advance_to(target)
                    continue
                if self._stopping:
                    break
                self._idle.set()
                self._wake.clear()
                await self._wake.wait()
                continue
            batch = self._collect_batch()
            if batch:
                self._service_batch(batch)
            # yield so freshly submitted requests (and cancellations)
            # land between batches
            await asyncio.sleep(0)
        self._idle.set()

    def _promote_arrivals(self) -> None:
        now = self.sim.now
        moved = False
        while self._arrivals and self._arrivals[0][0] <= now:
            _, _, entry = heapq.heappop(self._arrivals)
            key = (entry.deadline_cycle, entry.seq, entry)
            heapq.heappush(self._ready, key)
            heapq.heappush(
                self._by_module.setdefault(entry.request.module, []), key)
            moved = True
        if moved:
            self._sample_depth()

    def _collect_batch(self) -> List[_Entry]:
        """EDF winner plus same-module riders, in deadline order."""
        winner: Optional[_Entry] = None
        while self._ready:
            _, _, entry = heapq.heappop(self._ready)
            if entry.state is _PENDING:
                winner = entry
                break
        if winner is None:
            return []
        winner.state = _CLAIMED
        batch = [winner]
        module_heap = self._by_module.get(winner.request.module, [])
        while module_heap and len(batch) < self.batch_limit:
            _, _, entry = heapq.heappop(module_heap)
            if entry.state is not _PENDING:
                continue
            entry.state = _CLAIMED
            batch.append(entry)
        return batch

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    def _service_batch(self, batch: List[_Entry]) -> None:
        sim = self.sim
        obs = self.obs
        if self._started_cycle is None:
            self._started_cycle = sim.now
        module = batch[0].request.module
        span = None
        if obs is not None:
            span = obs.tracer.begin(TRACK, "batch", sim.now, module=module,
                                    size=len(batch))
        try:
            runnable = [e for e in batch if self._admit(e)]
            if runnable:
                self._run_batch(module, runnable)
        finally:
            if obs is not None:
                obs.tracer.end(span, sim.now)
                instruments = self._metrics(obs)
                instruments["batches"].inc()
                instruments["batch_size"].record(len(batch))
        self._compact_heaps()
        self._sample_depth()

    def _compact_heaps(self) -> None:
        """Rebuild the EDF heaps once lazily-deleted keys dominate.

        ``_collect_batch`` physically removes a claimed entry from only
        one of the two heaps holding its key; the other keeps a stale
        key until it happens to be popped.  A module that rarely wins
        EDF arbitration would otherwise accumulate every one of its
        finished riders in ``_by_module`` for the scheduler's lifetime.
        Each heap is rebuilt (filter + heapify, O(live)) once its stale
        keys outnumber half the live pending population; the growth
        guard keeps the amortized cost per request constant.
        """
        pending = self._pending_count
        threshold = pending + (pending >> 1) + 16
        if len(self._ready) > threshold:
            live = [key for key in self._ready if key[2].state is _PENDING]
            heapq.heapify(live)
            self._ready = live
        by_module = self._by_module
        stale_modules = [module for module, heap in by_module.items()
                         if len(heap) > threshold]
        for module in stale_modules:
            live = [key for key in by_module[module]
                    if key[2].state is _PENDING]
            if live:
                heapq.heapify(live)
                by_module[module] = live
            else:
                del by_module[module]

    def _admit(self, entry: _Entry) -> bool:
        """Pre-service gate: cancellation, queue timeout, late drop."""
        request = entry.request
        now_us = self._cycles_to_us(self.sim.now)
        if entry.future.cancelled():
            self._finish(entry, None)
            return False
        if (request.timeout_us is not None
                and now_us > request.arrival_us + request.timeout_us):
            self._finish(entry, self._outcome(
                entry, TIMED_OUT, start=None,
                error=f"queue wait exceeded {request.timeout_us} us"))
            return False
        if self.drop_late and now_us > request.deadline_us:
            self._finish(entry, self._outcome(
                entry, DROPPED, start=None,
                error="deadline passed before service"))
            return False
        if (self.energy_budgets_nj is not None
                and request.tenant is not None):
            budget = self.energy_budgets_nj.get(request.tenant)
            if (budget is not None
                    and self.tenant_energy_nj.get(request.tenant, 0.0)
                    >= budget):
                self._finish(entry, self._outcome(
                    entry, DROPPED, start=None,
                    error="tenant energy budget exhausted"))
                return False
        return True

    def _run_batch(self, module: str, entries: List[_Entry]) -> None:
        sim = self.sim
        obs = self.obs
        start_us = self._cycles_to_us(sim.now)
        cache_hit: Optional[bool] = None
        td_us = tr_us = 0.0
        reconfigured = False
        try:
            result, cache_hit = self._ensure_loaded(module)
        except BitstreamRejected as exc:
            # static verifier refused the artifact before any ICAP
            # traffic; distinct from FAILED so replays can tell "bad
            # artifact" from "hardware fault"
            if obs is not None:
                obs.tracer.instant(TRACK, "bitstream_rejected", sim.now,
                                   module=module)
            for entry in entries:
                self._finish(entry, self._outcome(
                    entry, REJECTED, start=start_us, error=str(exc),
                    cache_hit=cache_hit))
            return
        except (ControllerError, SchedulerError) as exc:
            # SchedulerError: the peak-power governor found the cap
            # infeasible for one atomic reconfiguration — served
            # in-band as FAILED so the replay never wedges
            for entry in entries:
                self._finish(entry, self._outcome(
                    entry, FAILED, start=start_us, error=str(exc),
                    cache_hit=cache_hit))
            return
        reconfig_share_nj = 0.0
        if result is not None:
            reconfigured = True
            td_us, tr_us = result.td_us, result.tr_us
            busy = int(tr_us * self._freq_hz / 1e6)
            self.icap_busy_cycles += busy
            if self._governor is not None:
                # actual interval: the admission estimate was an upper
                # bound starting no earlier, so the commit never
                # violates the windows admission checked
                self._governor.commit(sim.now - busy, sim.now)
            if self.power_profile is not None:
                batch_nj = self.power_profile.reconfig_energy_nj(
                    busy, self._freq_hz)
                reconfig_share_nj = batch_nj / len(entries)
            if obs is not None:
                instruments = self._metrics(obs)
                instruments["reconfigs"].inc()
                instruments["icap_busy"].inc(busy)
                instruments["td"].record(int(td_us * self._freq_hz / 1e6))
                instruments["tr"].record(busy)
                if self.power_profile is not None:
                    instruments["reconfig_energy"].record(
                        int(batch_nj))
                    if self._governor is not None:
                        instruments["peak_power"].set(
                            self._governor.max_window_power_mw())
        elif obs is not None:
            self._metrics(obs)["skips"].inc()
        for index, entry in enumerate(entries):
            self._run_payload(entry, start_us,
                              td_us=td_us if index == 0 else 0.0,
                              tr_us=tr_us if index == 0 else 0.0,
                              cache_hit=cache_hit,
                              reconfigured=reconfigured and index == 0,
                              batched=index > 0,
                              reconfig_share_nj=reconfig_share_nj)

    def _ensure_loaded(
            self, module: str
    ) -> Tuple[Optional[ReconfigResult], Optional[bool]]:
        """Swap ``module`` in (through the cache when one is attached).

        Returns ``(ReconfigResult | None, cache_hit | None)``; retries
        through the driver's abort/recover path on failure.
        """
        manager = self.manager
        cache_hit: Optional[bool] = None
        if manager.loaded_module == module:
            return None, None
        attempts = 0
        while True:
            descriptor = None
            if self.cache is not None:
                descriptor, cache_hit = self.cache.get(module)
            if self.verify:
                self._verify_descriptor(module, descriptor)
            if self._governor is not None:
                self._defer_for_power(module, descriptor)
            try:
                return manager.load_module(
                    module, descriptor=descriptor,
                    mode=self.reconfig_mode), cache_hit
            except ControllerError:
                attempts += 1
                obs = self.obs
                if obs is not None:
                    self._metrics(obs)["retries"].inc()
                if attempts > self.max_retries:
                    raise
                self._recover()

    def _verify_descriptor(self, module: str, descriptor: Any) -> None:
        """Statically verify the module's DDR-resident bitstream.

        Raises :class:`BitstreamRejected` (served in-band as REJECTED)
        when the stream is malformed or configures frames outside the
        module's declared partition — before the driver issues a single
        ICAP write.  The verdict is memoized per DDR placement, so a
        clean trace pays one verification per (module, address, size).
        """
        if descriptor is None:
            descriptor = self.manager.descriptor(module)
        key = (module, descriptor.start_address, descriptor.pbit_size)
        errors = self._verify_memo.get(key)
        if errors is None:
            # local import: the verifier pulls the whole static-analysis
            # stack, which verify=False replays never need
            from repro.fpga.bitstream import Bitstream
            from repro.lint.findings import Severity
            from repro.verify import verify_bitstream

            soc = self.soc
            raw = soc.ddr_read(descriptor.start_address,
                               descriptor.pbit_size)
            rp = soc.partitions[soc.module_rp_index(module)]
            report = verify_bitstream(Bitstream.from_bytes(raw), rp,
                                      name=module)
            errors = [f"{f.rule_id}: {f.message}" for f in report.findings
                      if f.severity is Severity.ERROR]
            self._verify_memo[key] = errors
        if errors:
            raise BitstreamRejected(module, errors)

    def _defer_for_power(self, module: str, descriptor: Any) -> None:
        """Hold the batch until the peak-power governor admits it.

        The estimate (pbit size at 4 B/cycle plus a fixed driver
        overhead) upper-bounds the actual busy window, so the committed
        interval can only be shorter than what admission reserved.
        Raises :class:`SchedulerError` (served in-band as FAILED) when
        the cap is infeasible for a single atomic reconfiguration.
        """
        governor = self._governor
        assert governor is not None
        if descriptor is None:
            descriptor = self.manager.descriptor(module)
        assert self.power_profile is not None
        est = self.power_profile.estimate_reconfig_cycles(
            descriptor.pbit_size)
        delay = governor.admission_delay(self.sim.now, est)
        if not delay:
            return
        governor.note_deferral(delay)
        obs = self.obs
        if obs is not None:
            self._metrics(obs)["power_deferrals"].inc()
            obs.tracer.instant(TRACK, "power_deferral", self.sim.now,
                               module=module, cycles=delay)
        self.manager.port.elapse(delay)

    def _recover(self) -> None:
        """Driver-level cleanup between retry attempts."""
        manager = self.manager
        if manager.controller == "rvcap":
            manager.rvcap.abort_reconfig()
        timing = self.soc.config.timing
        manager.port.elapse(max(1, int(
            timing.recovery_backoff_us * timing.soc_freq_hz / 1e6)))

    def _run_payload(self, entry: _Entry, start_us: float, *,
                     td_us: float, tr_us: float,
                     cache_hit: Optional[bool], reconfigured: bool,
                     batched: bool,
                     reconfig_share_nj: float = 0.0) -> None:
        request = entry.request
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.tracer.begin(TRACK, "request", self.sim.now,
                                    id=request.request_id,
                                    module=request.module)
        tc_us = 0.0
        error: Optional[str] = None
        try:
            if request.payload_shape is not None:
                image = self._payload_frame(request.payload_shape)
                _out, times = self.manager.process_image(
                    request.module, image)
                tc_us = times.tc_us
        except ControllerError as exc:
            error = str(exc)
        finally:
            if obs is not None:
                obs.tracer.end(span, self.sim.now)
        status = FAILED if error is not None else COMPLETED
        if self.power_profile is not None:
            nj = reconfig_share_nj
            if tc_us:
                nj += self.power_profile.payload_energy_nj(tc_us)
            if nj:
                self._charge_energy(request.tenant, nj)
        outcome = self._outcome(entry, status, start=start_us, error=error,
                                cache_hit=cache_hit)
        outcome.td_us, outcome.tr_us, outcome.tc_us = td_us, tr_us, tc_us
        outcome.reconfigured = reconfigured
        outcome.batched = batched
        self._finish(entry, outcome)

    def _charge_energy(self, tenant: Optional[str], nj: float) -> None:
        self.energy_nj_total += nj
        if tenant is not None:
            self.tenant_energy_nj[tenant] = (
                self.tenant_energy_nj.get(tenant, 0.0) + nj)
        obs = self.obs
        if obs is not None:
            instruments = self._metrics(obs)
            instruments["energy"].inc(int(nj))
            if tenant is not None:
                per_tenant = instruments["energy_tenant"]
                counter = per_tenant.get(tenant)
                if counter is None:
                    counter = obs.metrics.counter(
                        "sched_tenant_energy_nj",
                        "modeled energy charged per tenant (nJ)",
                        labels={"tenant": tenant})
                    per_tenant[tenant] = counter
                counter.inc(int(nj))

    # ------------------------------------------------------------------
    # outcome bookkeeping
    # ------------------------------------------------------------------
    def _outcome(self, entry: _Entry, status: str, *,
                 start: Optional[float], error: Optional[str] = None,
                 cache_hit: Optional[bool] = None) -> RequestOutcome:
        request = entry.request
        finish = self._cycles_to_us(self.sim.now) \
            if status == COMPLETED else None
        return RequestOutcome(
            request_id=request.request_id,
            module=request.module,
            status=status,
            arrival_us=request.arrival_us,
            deadline_us=request.deadline_us,
            start_us=start,
            finish_us=finish,
            cache_hit=cache_hit,
            error=error,
        )

    def _finish(self, entry: _Entry,
                outcome: Optional[RequestOutcome]) -> None:
        """Resolve the entry's future and record terminal metrics."""
        entry.state = _DONE
        self._pending_count -= 1
        obs = self.obs
        if outcome is None:  # cancelled upstream; future already dead
            if obs is not None:
                self._metrics(obs)["cancelled"].inc()
            return
        if obs is not None:
            instruments = self._metrics(obs)
            status_counter = instruments["status"].get(outcome.status)
            if status_counter is None:  # pragma: no cover - custom status
                status_counter = obs.metrics.counter(
                    f"sched_{outcome.status}_total",
                    f"requests that finished {outcome.status}")
            status_counter.inc()
            if outcome.deadline_missed:
                instruments["deadline_misses"].inc()
                obs.tracer.instant(TRACK, "deadline_miss", self.sim.now,
                                   id=outcome.request_id,
                                   module=outcome.module)
            if outcome.latency_us is not None:
                instruments["latency"].record(
                    int(outcome.latency_us * self._freq_hz / 1e6))
            if outcome.start_us is not None:
                wait = max(0.0, outcome.start_us - outcome.arrival_us)
                instruments["queue_wait"].record(
                    int(wait * self._freq_hz / 1e6))
            if outcome.tc_us:
                instruments["tc"].record(
                    int(outcome.tc_us * self._freq_hz / 1e6))
        if not entry.future.cancelled():
            entry.future.set_result(outcome)

    # ------------------------------------------------------------------
    # payload frames (content is irrelevant; geometry must match the RM)
    # ------------------------------------------------------------------
    def _payload_frame(self, shape: Tuple[int, int]) -> np.ndarray:
        frame = self._payload_frames.get(shape)
        if frame is None:
            height, width = shape
            frame = (np.add.outer(np.arange(height, dtype=np.uint16),
                                  np.arange(width, dtype=np.uint16))
                     & 0xFF).astype(np.uint8)
            self._payload_frames[shape] = frame
        return frame

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def icap_utilization(self) -> float:
        """Fraction of elapsed time the ICAP spent programming."""
        if self._started_cycle is None:
            return 0.0
        elapsed = self.sim.now - self._started_cycle
        return self.icap_busy_cycles / elapsed if elapsed else 0.0

    @property
    def power_deferrals(self) -> int:
        """Reconfigurations the peak-power governor held back."""
        return self._governor.deferrals if self._governor is not None else 0

    @property
    def power_deferred_cycles(self) -> int:
        governor = self._governor
        return governor.deferred_cycles if governor is not None else 0

    def peak_window_power_mw(self) -> Optional[float]:
        """Peak of the modeled windowed power trace (None = no governor)."""
        if self._governor is None:
            return None
        return self._governor.max_window_power_mw()

    def power_samples(self) -> List[Tuple[int, float]]:
        """The governor's modeled power-over-time compliance trace."""
        return (self._governor.power_samples()
                if self._governor is not None else [])

    def power_summary(self) -> Optional[Dict[str, Any]]:
        """Energy/power accounting totals (None when accounting is off)."""
        if self.power_profile is None:
            return None
        return {
            "profile_version": self.power_profile.version,
            "energy_nj_total": round(self.energy_nj_total, 3),
            "energy_by_tenant": {
                tenant: round(nj, 3)
                for tenant, nj in sorted(self.tenant_energy_nj.items())},
            "power_deferrals": self.power_deferrals,
            "power_deferred_cycles": self.power_deferred_cycles,
            "power_cap_mw": self.peak_power_mw,
            "peak_window_power_mw": self.peak_window_power_mw(),
        }
