"""LRU partial-bitstream cache: hot pbits live in DDR, cold on SD.

``init_RModules`` (the paper's Listing 1, step 1) loads *every*
registered pbit into DDR up front — fine for three case-study filters,
hopeless for a multi-tenant catalog that outgrows the DDR budget.  The
:class:`BitstreamCache` replaces the eager load with demand paging: the
first swap of a module walks the SD/FAT32 path and stages the pbit into
a bounded DDR arena; repeat swaps hit the arena and skip the SD card
entirely.  Eviction is LRU over whole bitstreams.

Miss-path timing
----------------
The FAT32 mount used here reads card blocks through the untimed
backdoor (wall-clock fast), and the cache charges the *simulated* cost
of the transfer explicitly, calibrated to the SPI-mode SD link the
timed :class:`~repro.drivers.fileio.SpiSdBlockDevice` models: at the
default divider of 4 every byte occupies the shift register for
``8 * 4`` bus cycles, plus a per-block command/token/CRC envelope and a
per-file directory-plus-FAT walk.  A 15.8 KB pbit therefore costs
~5.3 ms of simulated time to fault in — two orders of magnitude above
its ~63 us reconfiguration — which is exactly why repeat swaps must
bypass the card.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.drivers.fileio import RmDescriptor
from repro.drivers.mmio import HostPort
from repro.errors import CacheCapacityError
from repro.fat32.blockdev import BLOCK_SIZE
from repro.fat32.filesystem import Fat32FileSystem

if TYPE_CHECKING:
    from repro.obs import Counter, Observability

#: SPI-mode SD link cost model (matches SpiSdBlockDevice at divider 4)
SPI_DIVIDER = 4
CYCLES_PER_BYTE = 8 * SPI_DIVIDER
#: CMD17 frame (6 bytes), response/token hunt, CRC16 and turnaround
BLOCK_OVERHEAD_CYCLES = 420
#: directory lookup plus FAT chain walk per file open
FILE_OVERHEAD_CYCLES = 2400

#: DDR placement granularity for cached bitstreams
ARENA_ALIGN = 64


def sd_load_cycles(nbytes: int) -> int:
    """Simulated cycles to fault ``nbytes`` in from the SD card."""
    blocks = -(-nbytes // BLOCK_SIZE) if nbytes else 1
    return (FILE_OVERHEAD_CYCLES
            + blocks * (BLOCK_SIZE * CYCLES_PER_BYTE + BLOCK_OVERHEAD_CYCLES))


@dataclass
class CacheStats:
    """Running counters; mirrored into the obs metrics registry."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: bytes faulted in over the (modelled) SD link
    sd_bytes_loaded: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Extent:
    """One resident bitstream in the arena."""

    descriptor: RmDescriptor
    address: int
    size: int = field(init=False)

    def __post_init__(self) -> None:
        self.size = (self.descriptor.pbit_size + ARENA_ALIGN - 1) \
            & ~(ARENA_ALIGN - 1)


class BitstreamCache:
    """Demand-paged LRU cache of partial bitstreams in a DDR arena."""

    def __init__(self, port: HostPort, filesystem: Fat32FileSystem, *,
                 arena_base: int, arena_bytes: int,
                 charge_sd_time: bool = True) -> None:
        if arena_bytes <= 0:
            raise CacheCapacityError("cache arena must be non-empty")
        self.port = port
        self.fs = filesystem
        self.arena_base = arena_base
        self.arena_bytes = arena_bytes
        self.charge_sd_time = charge_sd_time
        self.stats = CacheStats()
        #: name -> extent, in LRU order (first item = coldest)
        self._resident: "OrderedDict[str, _Extent]" = OrderedDict()
        #: sorted, coalesced (address, size) free extents
        self._free: List[Tuple[int, int]] = [(arena_base, arena_bytes)]

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    @property
    def _obs(self) -> "Optional[Observability]":
        return self.port.soc.obs

    def _counter(self, name: str, help_text: str) -> "Optional[Counter]":
        obs = self._obs
        return obs.metrics.counter(name, help_text) if obs is not None \
            else None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def contains(self, name: str) -> bool:
        return name in self._resident

    @property
    def resident_modules(self) -> List[str]:
        """Module names in LRU order, coldest first."""
        return list(self._resident)

    @property
    def resident_bytes(self) -> int:
        return sum(e.size for e in self._resident.values())

    # ------------------------------------------------------------------
    # the cache operation
    # ------------------------------------------------------------------
    def get(self, name: str) -> Tuple[RmDescriptor, bool]:
        """Descriptor for ``name``'s pbit in DDR, faulting it in on miss.

        Returns ``(descriptor, hit)``.  The descriptor's
        ``start_address`` points into the cache arena, ready for
        :meth:`ReconfigurationManager.load_module`'s ``descriptor``
        override.
        """
        extent = self._resident.get(name)
        if extent is not None:
            self._resident.move_to_end(name)
            self.stats.hits += 1
            counter = self._counter("sched_cache_hits_total",
                                    "bitstream cache hits")
            if counter is not None:
                counter.inc()
            return extent.descriptor, True
        descriptor = self._fault_in(name)
        self.stats.misses += 1
        counter = self._counter("sched_cache_misses_total",
                                "bitstream cache misses (SD faults)")
        if counter is not None:
            counter.inc()
        return descriptor, False

    def prefetch(self, names: List[str]) -> int:
        """Warm the arena with ``names`` (most valuable last); returns
        the number of modules actually faulted in."""
        loaded = 0
        for name in names:
            if not self.contains(name):
                _, hit = self.get(name)
                loaded += 0 if hit else 1
                # prefetching must not inflate the demand hit-rate
                self.stats.misses -= 1
        return loaded

    def invalidate(self, name: str) -> bool:
        """Drop ``name`` from the arena (e.g. after an SD rewrite)."""
        extent = self._resident.pop(name, None)
        if extent is None:
            return False
        self._release(extent)
        return True

    # ------------------------------------------------------------------
    # miss path
    # ------------------------------------------------------------------
    def _fault_in(self, name: str) -> RmDescriptor:
        from repro.fpga.bitfile import is_bit_file, parse_bit_file

        soc = self.port.soc
        obs = self._obs
        span = None
        if obs is not None:
            span = obs.tracer.begin("sched", "cache_fault", soc.sim.now,
                                    module=name)
        file_name = f"{name.upper()}.PBI"
        data = self.fs.read_file(file_name)
        if is_bit_file(data):
            _header, bitstream = parse_bit_file(data)
            data = bitstream.to_bytes()
        if self.charge_sd_time:
            self.port.elapse(sd_load_cycles(len(data)))
        address = self._allocate(len(data))
        soc.ddr_write(address, data)
        descriptor = RmDescriptor(
            name=name,
            file_name=file_name,
            start_address=address,
            pbit_size=len(data),
            functionality=name,
        )
        self._resident[name] = _Extent(descriptor, address)
        self.stats.sd_bytes_loaded += len(data)
        if obs is not None:
            obs.tracer.end(span, soc.sim.now, bytes=len(data))
            obs.metrics.counter(
                "sched_cache_sd_bytes_total",
                "pbit bytes faulted in from the SD card").inc(len(data))
            obs.metrics.histogram(
                "sched_cache_fault_cycles",
                "simulated cycles per cache fault").record(
                    sd_load_cycles(len(data)) if self.charge_sd_time else 0)
            obs.metrics.gauge(
                "sched_cache_resident_bytes",
                "bytes of pbit data resident in the arena").set(
                    float(self.resident_bytes))
        return descriptor

    # ------------------------------------------------------------------
    # arena allocator: first-fit free list, LRU eviction on pressure
    # ------------------------------------------------------------------
    def _allocate(self, nbytes: int) -> int:
        size = (nbytes + ARENA_ALIGN - 1) & ~(ARENA_ALIGN - 1)
        if size > self.arena_bytes:
            raise CacheCapacityError(
                f"pbit of {nbytes} bytes exceeds the {self.arena_bytes}-"
                "byte cache arena")
        while True:
            for index, (addr, free) in enumerate(self._free):
                if free >= size:
                    remainder = free - size
                    if remainder:
                        self._free[index] = (addr + size, remainder)
                    else:
                        del self._free[index]
                    return addr
            if not self._resident:
                # arena is empty yet fragmented-by-construction: cannot
                # happen with coalescing, but guard against it anyway
                raise CacheCapacityError(
                    f"no contiguous {size}-byte extent in an empty arena")
            self._evict_one()

    def _evict_one(self) -> None:
        _name, extent = self._resident.popitem(last=False)
        self._release(extent)
        self.stats.evictions += 1
        counter = self._counter("sched_cache_evictions_total",
                                "LRU evictions from the bitstream arena")
        if counter is not None:
            counter.inc()

    def _release(self, extent: _Extent) -> None:
        """Return an extent to the free list, coalescing neighbours."""
        self._free.append((extent.address, extent.size))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for addr, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((addr, size))
        self._free = merged

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view for reports."""
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "hit_rate": round(self.stats.hit_rate, 4),
            "sd_bytes_loaded": self.stats.sd_bytes_loaded,
            "resident_modules": self.resident_modules,
            "resident_bytes": self.resident_bytes,
            "arena_bytes": self.arena_bytes,
        }
