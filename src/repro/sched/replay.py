"""Trace replay: drive thousands of requests through the scheduler.

:func:`replay` is the measurement harness behind ``repro sched-bench``
and ``repro serve``: it submits an entire trace as concurrent asyncio
requests (open loop — arrival *eligibility* is enforced by the
scheduler against simulated time, so submission order does not model
anything), lets the arbiter drain it, and distils the outcomes plus the
obs metrics registry into a :class:`ReplayReport`.

All latencies are simulated microseconds; ``wall_seconds`` is the only
wall-clock number and exists purely to size benchmark runs.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.drivers.manager import ReconfigurationManager
from repro.obs import Observability
from repro.power.profile import DEFAULT_PROFILE, PowerProfile
from repro.sched.cache import BitstreamCache
from repro.sched.request import (
    CANCELLED,
    COMPLETED,
    RequestOutcome,
    SwapRequest,
)
from repro.sched.scheduler import DprScheduler
from repro.sched.workload import WorkloadSpec, build_sched_soc, make_cache, synthesize


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of raw (unbucketed) samples."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class ReplayReport:
    """Aggregate view of one replay, JSON-exportable."""

    requests: int
    completed: int
    deadline_misses: int
    statuses: Dict[str, int]
    #: simulated time the replay spanned (us)
    span_us: float
    #: completed requests per simulated second
    throughput_rps: float
    latency_p50_us: float
    latency_p99_us: float
    latency_mean_us: float
    queue_wait_p99_us: float
    deadline_miss_rate: float
    icap_utilization: float
    reconfigurations: int
    reconfig_skips: int
    batches: int
    mean_batch_size: float
    cache: Optional[Dict[str, Any]] = None
    wall_seconds: float = 0.0
    #: power accounting block from DprScheduler.power_summary();
    #: None when the replay ran without a power profile
    power: Optional[Dict[str, Any]] = None
    outcomes: List[RequestOutcome] = field(default_factory=list, repr=False)

    def to_dict(self, *, include_outcomes: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "requests": self.requests,
            "completed": self.completed,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": round(self.deadline_miss_rate, 6),
            "statuses": dict(self.statuses),
            "span_us": round(self.span_us, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_p50_us": round(self.latency_p50_us, 3),
            "latency_p99_us": round(self.latency_p99_us, 3),
            "latency_mean_us": round(self.latency_mean_us, 3),
            "queue_wait_p99_us": round(self.queue_wait_p99_us, 3),
            "icap_utilization": round(self.icap_utilization, 6),
            "reconfigurations": self.reconfigurations,
            "reconfig_skips": self.reconfig_skips,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "cache": self.cache,
            "wall_seconds": round(self.wall_seconds, 3),
            "power": self.power,
        }
        if include_outcomes:
            out["outcomes"] = [o.to_dict() for o in self.outcomes]
        return out


def summarize(outcomes: List[RequestOutcome], *,
              scheduler: DprScheduler,
              cache: Optional[BitstreamCache],
              wall_seconds: float) -> ReplayReport:
    """Distil raw outcomes + scheduler state into a report."""
    statuses: Dict[str, int] = {}
    latencies: List[float] = []
    waits: List[float] = []
    first_arrival = min((o.arrival_us for o in outcomes), default=0.0)
    last_finish = first_arrival
    misses = 0
    for outcome in outcomes:
        statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
        if outcome.deadline_missed:
            misses += 1
        if outcome.latency_us is not None:
            latencies.append(outcome.latency_us)
        if outcome.start_us is not None:
            waits.append(max(0.0, outcome.start_us - outcome.arrival_us))
        if outcome.finish_us is not None:
            last_finish = max(last_finish, outcome.finish_us)
    completed = statuses.get(COMPLETED, 0)
    span_us = max(last_finish - first_arrival, 1e-9)
    obs = scheduler.obs
    reconfigs = skips = batches = 0
    mean_batch = 0.0
    if obs is not None:
        def _count(name: str) -> int:
            instrument = obs.metrics.get(name)
            return int(instrument.value) if instrument is not None else 0
        reconfigs = _count("sched_reconfigurations_total")
        skips = _count("sched_reconfig_skips_total")
        batches = _count("sched_batches_total")
        hist = obs.metrics.get("sched_batch_size")
        if hist is not None and hist.count:
            mean_batch = hist.mean
    return ReplayReport(
        requests=len(outcomes),
        completed=completed,
        deadline_misses=misses,
        statuses=statuses,
        span_us=span_us,
        throughput_rps=completed / (span_us / 1e6),
        latency_p50_us=_percentile(latencies, 0.50),
        latency_p99_us=_percentile(latencies, 0.99),
        latency_mean_us=(sum(latencies) / len(latencies)) if latencies else 0.0,
        queue_wait_p99_us=_percentile(waits, 0.99),
        deadline_miss_rate=misses / len(outcomes) if outcomes else 0.0,
        icap_utilization=scheduler.icap_utilization(),
        reconfigurations=reconfigs,
        reconfig_skips=skips,
        batches=batches,
        mean_batch_size=mean_batch,
        cache=cache.snapshot() if cache is not None else None,
        wall_seconds=wall_seconds,
        power=scheduler.power_summary(),
        outcomes=outcomes,
    )


async def _serve(scheduler: DprScheduler,
                 requests: List[SwapRequest]) -> List[RequestOutcome]:
    async with scheduler:
        futures = [scheduler.submit(request) for request in requests]
        results = await asyncio.gather(*futures, return_exceptions=True)
    outcomes: List[RequestOutcome] = []
    for request, result in zip(requests, results):
        if isinstance(result, RequestOutcome):
            outcomes.append(result)
        elif isinstance(result, asyncio.CancelledError):
            # scheduler shutdown (or a caller) cancelled the future
            # before service; dropping it silently would understate
            # `requests` and hide the loss — report it in the
            # `cancelled` status bucket instead
            outcomes.append(RequestOutcome(
                request_id=request.request_id,
                module=request.module,
                status=CANCELLED,
                arrival_us=request.arrival_us,
                deadline_us=request.deadline_us,
                error="cancelled before completion",
            ))
        elif isinstance(result, BaseException):
            raise result
    return outcomes


def replay(manager: ReconfigurationManager,
           requests: List[SwapRequest], *,
           cache: Optional[BitstreamCache] = None,
           batch_limit: int = 64,
           drop_late: bool = False,
           max_retries: int = 1,
           reconfig_mode: str = "interrupt",
           verify: bool = False,
           prefetch: Optional[List[str]] = None,
           power_profile: Optional["PowerProfile"] = None,
           peak_power_mw: Optional[float] = None,
           power_window_us: float = 200.0,
           energy_budgets_nj: Optional[Dict[str, float]] = None) -> ReplayReport:
    """Replay ``requests`` through a fresh scheduler; returns the report.

    Observability is always attached (the report needs the metrics
    registry); reuse the SoC's existing instance when present.
    """
    soc = manager.soc
    if soc.obs is None:
        soc.attach_observability(Observability())
    scheduler = DprScheduler(
        manager, cache=cache, batch_limit=batch_limit, drop_late=drop_late,
        max_retries=max_retries, reconfig_mode=reconfig_mode,
        verify=verify,
        power_profile=power_profile, peak_power_mw=peak_power_mw,
        power_window_us=power_window_us,
        energy_budgets_nj=energy_budgets_nj)
    if cache is not None and prefetch:
        cache.prefetch(prefetch)
    started = time.perf_counter()
    outcomes = asyncio.run(_serve(scheduler, requests))
    wall = time.perf_counter() - started
    return summarize(outcomes, scheduler=scheduler, cache=cache,
                     wall_seconds=wall)


def bench(spec: WorkloadSpec, *,
          cache_bytes: int = 1 << 20,
          charge_sd_time: bool = True,
          batch_limit: int = 64,
          drop_late: bool = False,
          controller: str = "rvcap",
          reconfig_mode: str = "interrupt",
          verify: bool = False,
          prefetch_hot: int = 0,
          power_profile: Optional[PowerProfile] = None,
          peak_power_mw: Optional[float] = None,
          power_window_us: float = 200.0,
          energy_budgets_nj: Optional[Dict[str, float]] = None) -> ReplayReport:
    """One-call benchmark: build platform, synthesize, replay."""
    manager = build_sched_soc(spec.modules, frame=spec.frame,
                              controller=controller)
    cache = make_cache(manager, arena_bytes=cache_bytes,
                       charge_sd_time=charge_sd_time)
    requests = synthesize(spec)
    warm = [f"rm{i}" for i in range(min(prefetch_hot, spec.modules))]
    return replay(manager, requests, cache=cache, batch_limit=batch_limit,
                  drop_late=drop_late, reconfig_mode=reconfig_mode,
                  verify=verify, prefetch=warm or None,
                  power_profile=power_profile, peak_power_mw=peak_power_mw,
                  power_window_us=power_window_us,
                  energy_budgets_nj=energy_budgets_nj)


def sweep(spec: WorkloadSpec, rates: List[float],
          **bench_kwargs: Any) -> List[Dict[str, Any]]:
    """Replay the same workload shape at several arrival rates.

    Returns one report dict per rate — the throughput/latency/miss
    curves the issue asks for.
    """
    from dataclasses import replace
    curves: List[Dict[str, Any]] = []
    for rate in rates:
        report = bench(replace(spec, arrival_rate_rps=rate), **bench_kwargs)
        entry = report.to_dict()
        entry["arrival_rate_rps"] = rate
        curves.append(entry)
    return curves


def power_sweep(spec: WorkloadSpec, caps_mw: List[Optional[float]],
                **bench_kwargs: Any) -> List[Dict[str, Any]]:
    """Replay the same workload under several peak-power caps.

    The first point is always the uncapped baseline (power accounting
    on, governor off); each capped point reports its deadline-miss
    delta against it — the deadline-miss-vs-energy tradeoff curve.
    A ``None`` in ``caps_mw`` is skipped (the baseline already covers
    it).  Caps infeasible for a single reconfiguration surface in-band
    as failed requests, so a sweep never aborts mid-curve.
    """
    bench_kwargs.pop("peak_power_mw", None)
    profile = bench_kwargs.pop("power_profile", None) or DEFAULT_PROFILE
    baseline = bench(spec, power_profile=profile, **bench_kwargs)
    points: List[Dict[str, Any]] = []
    entry = baseline.to_dict()
    entry["power_cap_mw"] = None
    entry["miss_delta_vs_uncapped"] = 0.0
    points.append(entry)
    for cap in caps_mw:
        if cap is None:
            continue
        report = bench(spec, power_profile=profile, peak_power_mw=cap,
                       **bench_kwargs)
        entry = report.to_dict()
        entry["power_cap_mw"] = cap
        entry["miss_delta_vs_uncapped"] = round(
            report.deadline_miss_rate - baseline.deadline_miss_rate, 6)
        points.append(entry)
    return points
