"""Request model for the multi-tenant DPR scheduler.

A :class:`SwapRequest` is one tenant ask: *swap accelerator X into the
partition by deadline Z, then run payload W*.  Arrival and deadline are
absolute **simulated** timestamps (microseconds of SoC time) — the
scheduler serves a simulated request stream, so wall-clock never enters
the model and two replays of the same trace are byte-identical.

A :class:`RequestOutcome` is the terminal record the scheduler resolves
each request's future with; failures are reported in-band through
``status`` rather than as raised exceptions so a replay of thousands of
requests aggregates cleanly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ControllerError

#: terminal request states
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
TIMED_OUT = "timed_out"
DROPPED = "dropped"
#: the admission verifier found the module's bitstream malformed; the
#: ICAP was never touched
REJECTED = "rejected"

STATUSES = (COMPLETED, FAILED, CANCELLED, TIMED_OUT, DROPPED, REJECTED)


@dataclass(frozen=True)
class SwapRequest:
    """One "swap module in by a deadline, run a payload" request."""

    #: registered RM name to swap into the partition
    module: str
    #: absolute simulated arrival time (us); the request is not
    #: eligible for service before this instant
    arrival_us: float
    #: absolute simulated completion deadline (us)
    deadline_us: float
    #: (height, width) of a uint8 frame to stream through the RM after
    #: the swap; None is a pure reconfiguration request
    payload_shape: Optional[Tuple[int, int]] = None
    #: maximum queue wait after arrival before the scheduler gives up
    #: on the request (None = wait forever)
    timeout_us: Optional[float] = None
    #: caller-chosen identifier carried through to the outcome
    request_id: int = 0
    #: tenant the request bills against; None bills the shared pool.
    #: Per-tenant energy budgets (``DprScheduler(energy_budgets_nj=...)``)
    #: key on this name.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival_us < 0:
            raise ControllerError("arrival_us must be >= 0")
        if self.deadline_us < self.arrival_us:
            raise ControllerError(
                f"request {self.request_id}: deadline {self.deadline_us} "
                f"precedes arrival {self.arrival_us}")
        if self.timeout_us is not None and self.timeout_us <= 0:
            raise ControllerError("timeout_us must be positive")

    @property
    def slack_us(self) -> float:
        return self.deadline_us - self.arrival_us

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        if self.payload_shape is not None:
            out["payload_shape"] = list(self.payload_shape)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SwapRequest":
        shape = data.get("payload_shape")
        return cls(
            module=data["module"],
            arrival_us=float(data["arrival_us"]),
            deadline_us=float(data["deadline_us"]),
            payload_shape=tuple(shape) if shape else None,
            timeout_us=data.get("timeout_us"),
            request_id=int(data.get("request_id", 0)),
            tenant=data.get("tenant"),
        )


@dataclass
class RequestOutcome:
    """Terminal record of one request's journey through the scheduler."""

    request_id: int
    module: str
    status: str
    arrival_us: float
    deadline_us: float
    #: service start (first scheduler attention) and completion, in
    #: simulated us; None when the request never ran
    start_us: Optional[float] = None
    finish_us: Optional[float] = None
    #: Table-IV style per-request breakdown; zero when the batch rode a
    #: module that was already resident
    td_us: float = 0.0
    tr_us: float = 0.0
    tc_us: float = 0.0
    #: True/False when the swap touched the bitstream cache;
    #: None when no reconfiguration was needed at all
    cache_hit: Optional[bool] = None
    #: this request's batch actually programmed the ICAP
    reconfigured: bool = False
    #: rode a batch whose DPR was paid by an earlier request
    batched: bool = False
    error: Optional[str] = None

    @property
    def latency_us(self) -> Optional[float]:
        """Arrival-to-completion latency (None when never completed)."""
        if self.finish_us is None:
            return None
        return self.finish_us - self.arrival_us

    @property
    def deadline_missed(self) -> bool:
        """A request misses unless it *completed* by its deadline."""
        if self.status != COMPLETED or self.finish_us is None:
            return True
        return self.finish_us > self.deadline_us

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["latency_us"] = self.latency_us
        out["deadline_missed"] = self.deadline_missed
        return out
