"""Workload synthesis for the DPR scheduler benchmarks.

The generator produces open-loop Poisson request streams over a catalog
of registered modules with Zipf-skewed popularity — the shape that
makes a bitstream cache interesting: a few hot modules dominate (cache
hits, batching) while a long tail forces faults and LRU churn.

:func:`build_sched_soc` assembles the serving platform: the reference
SoC with its case-study partition swapped for a *small* RP (one CLB
column) whose partial bitstream reconfigures in ~63 us instead of the
case study's 1651 us — a multi-tenant server floorplans for swap
latency, and the small RP keeps a 10k-request replay tractable in
wall-clock while exercising exactly the same driver stack.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.accel import ACCELERATOR_RESOURCES
from repro.drivers.manager import ReconfigurationManager
from repro.errors import SchedulerError
from repro.fat32 import Fat32FileSystem, SdBackdoorBlockDevice
from repro.fpga.partition import (
    ReconfigurableModule,
    ReconfigurablePartition,
    ResourceBudget,
    RpGeometry,
)
from repro.sched.cache import BitstreamCache
from repro.sched.request import SwapRequest
from repro.soc.builder import build_soc
from repro.soc.config import SocConfig

#: behaviours cycled over the synthetic module catalog
_BEHAVIOR_CYCLE = ("sobel", "median", "gaussian", "erode")

#: the serving RP: one CLB column -> ~15.8 KB pbit, ~63 us swap
SCHED_RP_GEOMETRY = RpGeometry(clb_cols=1, bram_cols=0, dsp_cols=0, rows=1)
#: generous budget so every case-study behaviour fits the serving RP
SCHED_RP_BUDGET = ResourceBudget(luts=4000, ffs=4000, brams=8, dsps=20)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic request stream."""

    #: number of requests to generate
    requests: int = 1000
    #: mean arrival rate (requests per simulated second, Poisson)
    arrival_rate_rps: float = 2000.0
    #: catalog size (modules rm0..rmN-1)
    modules: int = 8
    #: Zipf popularity exponent (0 = uniform, ~1.1 = web-like skew)
    zipf_s: float = 1.1
    #: mean deadline slack after arrival (us)
    deadline_slack_us: float = 20_000.0
    #: +/- fraction of uniform jitter applied to each deadline's slack
    slack_jitter: float = 0.5
    #: attach an image payload to each request
    payload: bool = True
    #: square payload frame edge (pixels); must match the RM geometry
    frame: int = 64
    #: per-request queue timeout (None = wait forever)
    timeout_us: Optional[float] = None
    #: RNG seed: same spec -> byte-identical trace
    seed: int = 2026
    #: arrival time of the first request (us)
    start_us: float = 100.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise SchedulerError("a workload needs at least one request")
        if self.modules < 1:
            raise SchedulerError("a workload needs at least one module")
        if self.arrival_rate_rps <= 0:
            raise SchedulerError("arrival_rate_rps must be positive")
        if not 0.0 <= self.slack_jitter < 1.0:
            raise SchedulerError("slack_jitter must be in [0, 1)")

    def to_dict(self) -> dict:
        return asdict(self)


def module_names(count: int) -> List[str]:
    return [f"rm{i}" for i in range(count)]


def synthesize(spec: WorkloadSpec) -> List[SwapRequest]:
    """Deterministically generate the request stream for ``spec``."""
    rng = random.Random(spec.seed)
    names = module_names(spec.modules)
    # Zipf popularity: weight of rank r is 1 / r**s
    weights = [1.0 / (rank ** spec.zipf_s) for rank in
               range(1, spec.modules + 1)]
    mean_gap_us = 1e6 / spec.arrival_rate_rps
    shape: Optional[Tuple[int, int]] = (spec.frame, spec.frame) \
        if spec.payload else None
    requests: List[SwapRequest] = []
    clock_us = spec.start_us
    for request_id in range(spec.requests):
        module = rng.choices(names, weights=weights, k=1)[0]
        jitter = 1.0 + rng.uniform(-spec.slack_jitter, spec.slack_jitter)
        slack = spec.deadline_slack_us * jitter
        requests.append(SwapRequest(
            module=module,
            arrival_us=round(clock_us, 3),
            deadline_us=round(clock_us + slack, 3),
            payload_shape=shape,
            timeout_us=spec.timeout_us,
            request_id=request_id,
        ))
        clock_us += rng.expovariate(1.0 / mean_gap_us)
    return requests


# ----------------------------------------------------------------------
# trace files: the `repro serve` interchange format
# ----------------------------------------------------------------------
def save_trace(requests: List[SwapRequest], path: str | Path, *,
               spec: Optional[WorkloadSpec] = None) -> None:
    """Write a replayable JSON trace."""
    payload = {
        "version": 1,
        "spec": spec.to_dict() if spec is not None else None,
        "requests": [request.to_dict() for request in requests],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_trace(path: str | Path) -> List[SwapRequest]:
    """Read a trace written by :func:`save_trace`."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        records = data.get("requests", [])
    else:  # bare list is accepted too
        records = data
    return [SwapRequest.from_dict(record) for record in records]


# ----------------------------------------------------------------------
# platform assembly
# ----------------------------------------------------------------------
def build_sched_soc(modules: int = 8, *, frame: int = 64,
                    controller: str = "rvcap",
                    config: Optional[SocConfig] = None
                    ) -> ReconfigurationManager:
    """Build the serving SoC: small RP + synthetic module catalog.

    Returns a provisioned :class:`ReconfigurationManager` (SD card holds
    every pbit) with **no** eager ``init_rmodules`` — bitstream staging
    is the cache's job.
    """
    soc = build_soc(config, with_case_study_modules=False)
    reference = soc.partitions[0]
    soc.partitions[0] = ReconfigurablePartition(
        name="rp_sched",
        geometry=SCHED_RP_GEOMETRY,
        budget=SCHED_RP_BUDGET,
        base_far=reference.base_far,
        device=reference.device,
    )
    for index, name in enumerate(module_names(modules)):
        behavior = _BEHAVIOR_CYCLE[index % len(_BEHAVIOR_CYCLE)]
        soc.register_module(ReconfigurableModule(
            name=name,
            resources=ACCELERATOR_RESOURCES[behavior],
            behavior=behavior,
            frame_width=frame,
            frame_height=frame,
        ))
    manager = ReconfigurationManager(soc, controller=controller)
    manager.provision_sdcard()
    return manager


def make_cache(manager: ReconfigurationManager, *,
               arena_bytes: int = 1 << 20,
               arena_offset: int = 32 << 20,
               charge_sd_time: bool = True) -> BitstreamCache:
    """Mount the provisioned card and build the DDR bitstream cache.

    The arena sits at ``ddr_base + arena_offset`` — clear of the image
    scratch buffers :meth:`ReconfigurationManager.process_image` uses at
    +64 MB / +80 MB.
    """
    soc = manager.soc
    filesystem = Fat32FileSystem.mount(SdBackdoorBlockDevice(soc.sdcard))
    return BitstreamCache(
        manager.port, filesystem,
        arena_base=soc.config.layout.ddr_base + arena_offset,
        arena_bytes=arena_bytes,
        charge_sd_time=charge_sd_time,
    )
