"""Fleet task catalog: evaluation workloads decomposed into shards.

A fleet *task* names an evaluation workload whose points are mutually
independent — each point builds its own SoC, runs, and reports — so the
runner can execute them in any order, in any process, and still merge
to one deterministic report.  Each task contributes:

``units(seed=..., **params)``
    The full, ordered list of unit descriptors.  A unit is a plain
    JSON/pickle-able dict carrying everything ``run_unit`` needs,
    including a per-unit seed derived from the campaign seed — the
    decomposition itself is what makes serial and sharded runs
    byte-identical.

``run_unit(unit)``
    Execute one unit in the current process and return a JSON-able
    result dict containing only deterministic (simulated-time) fields.

``summarize(results)``
    Fold the ordered result list into the task-level scorecard.

The runner (:mod:`repro.fleet.runner`) wraps ``run_unit`` with a fresh
:class:`~repro.obs.Observability` per unit and merges the per-shard
metric registries afterwards.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.eval.fault_sweep import fault_sweep
from repro.eval.figures import unroll_sweep
from repro.faults.campaign import ALL_KINDS
from repro.sched.replay import bench
from repro.sched.workload import WorkloadSpec

Unit = Dict[str, Any]
Result = Dict[str, Any]


def derive_seed(seed: int, *tokens: object) -> int:
    """Stable per-unit seed: mix the campaign seed with unit coordinates.

    CRC32 over the stringified coordinates keeps the derivation
    platform- and process-independent (no ``hash()`` randomization), so
    the same campaign seed always yields the same unit seeds.
    """
    text = ":".join(str(token) for token in tokens)
    return (seed * 0x9E37_79B1 + zlib.crc32(text.encode("utf-8"))) & 0x7FFF_FFFF


@dataclass(frozen=True)
class FleetTask:
    """One shardable workload: decomposition, execution, aggregation."""

    name: str
    description: str
    units: Callable[..., List[Unit]]
    run_unit: Callable[[Unit], Result]
    summarize: Callable[[List[Result]], Dict[str, Any]]


# ----------------------------------------------------------------------
# faults: one unit per (kind, point) of the injection campaign
# ----------------------------------------------------------------------
def _fault_units(*, seed: int, points: int = 2,
                 kinds: Optional[Sequence[str]] = None,
                 mode: str = "interrupt") -> List[Unit]:
    sweep_kinds = tuple(kinds) if kinds else ALL_KINDS
    units: List[Unit] = []
    for kind in sweep_kinds:
        for index in range(points):
            units.append({
                "kind": kind,
                "index": index,
                "mode": mode,
                "seed": derive_seed(seed, "faults", kind, index),
            })
    return units


def _fault_run(unit: Unit) -> Result:
    report = fault_sweep(points=1, seed=unit["seed"],
                         kinds=(unit["kind"],), mode=unit["mode"])
    outcome = report.outcomes[0]
    return {
        "kind": outcome.kind,
        "point": outcome.point,
        "detected": outcome.detected,
        "recovered": outcome.recovered,
        "error": outcome.error,
    }


def _fault_summary(results: List[Result]) -> Dict[str, Any]:
    n = len(results)
    detected = sum(1 for r in results if r["detected"])
    recovered = sum(1 for r in results if r["recovered"])
    return {
        "points": n,
        "detected": detected,
        "recovered": recovered,
        "detection_rate": round(detected / n, 6) if n else 1.0,
        "recovery_rate": round(recovered / n, 6) if n else 1.0,
    }


# ----------------------------------------------------------------------
# unroll: one unit per loop-unroll factor of the Sec. IV-B study
# ----------------------------------------------------------------------
def _unroll_units(*, seed: int,
                  factors: Sequence[int] = (1, 2, 4, 8, 16, 32)) -> List[Unit]:
    del seed  # the firmware study is fully deterministic
    return [{"factor": int(factor)} for factor in factors]


def _unroll_run(unit: Unit) -> Result:
    point = unroll_sweep((unit["factor"],)).points[0]
    return {
        "unroll": point.unroll,
        "tr_us": round(point.tr_us, 3),
        "throughput_mb_s": round(point.throughput_mb_s, 3),
        "instructions": point.instructions,
    }


def _unroll_summary(results: List[Result]) -> Dict[str, Any]:
    best = max(results, key=lambda r: float(r["throughput_mb_s"]),
               default=None)
    return {
        "points": len(results),
        "best_unroll": best["unroll"] if best else None,
        "best_throughput_mb_s": best["throughput_mb_s"] if best else None,
    }


# ----------------------------------------------------------------------
# sched: one unit per arrival rate of a scheduler replay rate sweep
# ----------------------------------------------------------------------
def _sched_units(*, seed: int,
                 rates: Sequence[float] = (1000.0, 2000.0, 4000.0),
                 requests: int = 400, modules: int = 8, frame: int = 32,
                 cache_bytes: int = 1 << 20,
                 power: bool = False,
                 power_cap_mw: Optional[float] = None,
                 power_window_us: float = 200.0) -> List[Unit]:
    return [{
        "rate": float(rate),
        "requests": requests,
        "modules": modules,
        "frame": frame,
        "cache_bytes": cache_bytes,
        # energy accounting is simulated-time-only, so power units stay
        # byte-identical between serial and sharded runs
        "power": bool(power or power_cap_mw is not None),
        "power_cap_mw": power_cap_mw,
        "power_window_us": power_window_us,
        # same workload shape at every rate (matches replay.sweep)
        "seed": seed,
    } for rate in rates]


def _sched_run(unit: Unit) -> Result:
    spec = WorkloadSpec(requests=unit["requests"],
                        arrival_rate_rps=unit["rate"],
                        modules=unit["modules"], frame=unit["frame"],
                        deadline_slack_us=20_000.0, seed=unit["seed"])
    power_kwargs: Dict[str, Any] = {}
    if unit.get("power"):
        from repro.power import DEFAULT_PROFILE
        power_kwargs = {
            "power_profile": DEFAULT_PROFILE,
            "peak_power_mw": unit.get("power_cap_mw"),
            "power_window_us": unit.get("power_window_us", 200.0),
        }
    report = bench(spec, cache_bytes=unit["cache_bytes"], **power_kwargs)
    out = report.to_dict()
    # wall_seconds is host time — the one non-deterministic field
    del out["wall_seconds"]
    out["arrival_rate_rps"] = unit["rate"]
    return out


def _sched_summary(results: List[Result]) -> Dict[str, Any]:
    summary = {
        "points": len(results),
        "completed": sum(int(r["completed"]) for r in results),
        "deadline_misses": sum(int(r["deadline_misses"]) for r in results),
        "reconfigurations": sum(int(r["reconfigurations"]) for r in results),
    }
    powered = [r["power"] for r in results if r.get("power")]
    if powered:
        summary["energy_nj_total"] = round(
            sum(float(p["energy_nj_total"]) for p in powered), 3)
        summary["power_deferrals"] = sum(
            int(p["power_deferrals"]) for p in powered)
    return summary


FLEET_TASKS: Dict[str, FleetTask] = {
    "faults": FleetTask(
        name="faults",
        description="fault-injection campaign, one shard per (kind, point)",
        units=_fault_units, run_unit=_fault_run, summarize=_fault_summary),
    "unroll": FleetTask(
        name="unroll",
        description="HWICAP loop-unroll study, one shard per factor",
        units=_unroll_units, run_unit=_unroll_run,
        summarize=_unroll_summary),
    "sched": FleetTask(
        name="sched",
        description="scheduler replay rate sweep, one shard per rate",
        units=_sched_units, run_unit=_sched_run, summarize=_sched_summary),
}
