"""Fleet runner: shard independent simulation units across processes.

The SoC simulator is single-threaded Python, so evaluation campaigns
(fault sweeps, unroll studies, scheduler rate sweeps) are wall-clock
bound by one core.  Their points are mutually independent — each builds
its own SoC — which makes them embarrassingly parallel at the process
level.  ``run_fleet`` maps a task's unit list over a ``fork``-context
``multiprocessing.Pool`` and merges the ordered results.

Determinism contract: the *unit decomposition* is the source of truth.
Serial mode (``workers=1``) executes the exact same unit list in the
exact same order in-process, so ``FleetReport.stable_json()`` is
byte-identical between a serial run and any worker count.  Host-time
fields (wall seconds, worker count) are excluded from the stable view.

Each unit runs under its own :class:`~repro.obs.Observability`; the
per-shard metric registries are merged in unit order via
:meth:`~repro.obs.MetricsRegistry.merge` into one fleet-wide snapshot.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ControllerError
from repro.fleet.tasks import FLEET_TASKS, Unit
from repro.obs import Observability, set_default_observability
from repro.obs.metrics import MetricsRegistry


def _execute_unit(payload: Tuple[str, Unit]) -> Dict[str, Any]:
    """Run one unit under a fresh default observability (worker entry).

    Top-level so it pickles by reference into pool workers; dispatch
    goes through the task registry, never through pickled closures.
    """
    name, unit = payload
    task = FLEET_TASKS[name]
    obs = Observability()
    set_default_observability(obs)
    try:
        result = task.run_unit(unit)
    finally:
        set_default_observability(None)
    return {"unit": unit, "result": result, "metrics": obs.metrics}


@dataclass
class FleetReport:
    """Merged view of one fleet run, JSON-exportable."""

    task: str
    seed: int
    workers: int
    units: List[Dict[str, Any]] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def stable_dict(self) -> Dict[str, Any]:
        """Deterministic content only — identical for any worker count."""
        return {
            "schema": "repro-fleet-v1",
            "task": self.task,
            "seed": self.seed,
            "units": self.units,
            "summary": self.summary,
            "metrics": self.metrics,
        }

    def stable_json(self) -> str:
        return json.dumps(self.stable_dict(), indent=2, sort_keys=True)

    def to_dict(self) -> Dict[str, Any]:
        out = self.stable_dict()
        out["workers"] = self.workers
        out["wall_seconds"] = round(self.wall_seconds, 3)
        return out

    def render(self) -> str:
        lines = [
            f"fleet {self.task}: {len(self.units)} units, "
            f"{self.workers} worker(s), seed {self.seed}, "
            f"{self.wall_seconds:.2f} s wall",
        ]
        for key in sorted(self.summary):
            lines.append(f"  {key}: {self.summary[key]}")
        return "\n".join(lines)


def run_fleet(task: str, *, workers: int = 1, seed: int = 2026,
              params: Optional[Mapping[str, Any]] = None) -> FleetReport:
    """Run every unit of ``task``, sharded over ``workers`` processes.

    ``params`` is forwarded to the task's unit decomposition (e.g.
    ``points``/``kinds`` for faults, ``factors`` for unroll).  Results
    always come back in unit order regardless of completion order.
    """
    spec = FLEET_TASKS.get(task)
    if spec is None:
        raise ControllerError(
            f"unknown fleet task {task!r}; "
            f"available: {', '.join(sorted(FLEET_TASKS))}")
    if workers < 1:
        raise ControllerError("workers must be >= 1")
    units = spec.units(seed=seed, **dict(params or {}))
    payload = [(task, unit) for unit in units]

    started = time.perf_counter()
    if workers == 1 or len(payload) <= 1:
        raw = [_execute_unit(item) for item in payload]
    else:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            # no fork on this platform: degrade to the serial path,
            # which produces the identical stable report
            raw = [_execute_unit(item) for item in payload]
        else:
            with ctx.Pool(min(workers, len(payload))) as pool:
                # ordered map: results come back in unit order
                raw = pool.map(_execute_unit, payload, chunksize=1)
    wall = time.perf_counter() - started

    merged = MetricsRegistry()
    for entry in raw:
        merged.merge(entry["metrics"])
    results = [entry["result"] for entry in raw]
    return FleetReport(
        task=task, seed=seed, workers=workers,
        units=[{"unit": entry["unit"], "result": entry["result"]}
               for entry in raw],
        summary=spec.summarize(results),
        metrics=merged.snapshot(),
        wall_seconds=wall,
    )
