"""Multiprocessing fleet runner for independent simulation shards.

See :mod:`repro.fleet.runner` for the determinism contract and
:mod:`repro.fleet.tasks` for the shardable workload catalog.
"""

from __future__ import annotations

from repro.fleet.runner import FleetReport, run_fleet
from repro.fleet.tasks import FLEET_TASKS, FleetTask, derive_seed

__all__ = [
    "FleetReport",
    "run_fleet",
    "FLEET_TASKS",
    "FleetTask",
    "derive_seed",
]
