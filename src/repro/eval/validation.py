"""Fast reproduction self-check (``python -m repro validate``).

Runs in ~10 seconds: verifies every *anchor* value of the reproduction
(the numbers EXPERIMENTS.md ties to the paper) plus the cheap
structural invariants, and reports pass/fail per check.  The full
evaluation lives in ``benchmarks/``; this is the smoke test a user runs
first after installing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Check:
    name: str
    paper: str
    measured: str
    ok: bool


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def run_validation() -> List[Check]:
    """Execute the anchor checks; returns one record per check."""
    checks: List[Check] = []

    def add(name: str, paper, measured, ok: bool) -> None:
        checks.append(Check(name, str(paper), str(measured), ok))

    # --- structural anchors (instant) --------------------------------
    from repro.fpga.bitgen import Bitgen
    from repro.fpga.partition import make_reference_rp
    size = Bitgen().expected_size_bytes(make_reference_rp())
    add("reference partial bitstream size (B)", 650_892, size,
        size == 650_892)

    from repro.resources.library import (
        full_soc_report,
        hwicap_controller,
        rvcap_controller,
    )
    rv = rvcap_controller()
    add("RV-CAP resources (LUT/FF/BRAM)", "2317/3953/6",
        f"{rv.luts}/{rv.ffs}/{rv.brams}",
        (rv.luts, rv.ffs, rv.brams) == (2317, 3953, 6))
    hw = hwicap_controller()
    add("HWICAP resources (LUT/FF/BRAM)", "1377/2200/2",
        f"{hw.luts}/{hw.ffs}/{hw.brams}",
        (hw.luts, hw.ffs, hw.brams) == (1377, 2200, 2))
    soc_total = full_soc_report().total
    add("full SoC resources (LUT/FF/BRAM/DSP)", "74393/64059/92/47",
        f"{soc_total.luts}/{soc_total.ffs}/{soc_total.brams}/{soc_total.dsps}",
        (soc_total.luts, soc_total.ffs, soc_total.brams, soc_total.dsps)
        == (74393, 64059, 92, 47))

    # --- timed anchors (one reference reconfiguration) ----------------
    from repro.eval.scenarios import reference_setup
    _soc, manager = reference_setup()
    result = manager.load_module("sobel")
    add("T_d (us)", 18.0, _fmt(result.td_us), abs(result.td_us - 18.0) < 0.4)
    add("T_r for reference PB (us)", 1651.0, _fmt(result.tr_us),
        abs(result.tr_us - 1651.0) < 1.0)
    add("reference throughput (MB/s)", "394.2", _fmt(result.throughput_mb_s),
        abs(result.throughput_mb_s - 394.24) < 0.5)

    # --- one accelerator run (Table IV row) ---------------------------
    import numpy as np
    from repro.accel import scene_image, sobel3x3
    image = scene_image(512)
    output, times = manager.process_image("sobel", image)
    add("T_c sobel (us)", 588.0, _fmt(times.tc_us),
        abs(times.tc_us - 588.0) < 0.6)
    add("sobel output vs golden", "bit-exact",
        "bit-exact" if np.array_equal(output, sobel3x3(image)) else "MISMATCH",
        bool(np.array_equal(output, sobel3x3(image))))

    # --- firmware anchor (one small HWICAP run at 16x unroll) ---------
    from repro.eval.figures import unroll_sweep
    point = unroll_sweep((16,)).points[0]
    add("HWICAP @16x unroll (MB/s)", 8.23, _fmt(point.throughput_mb_s),
        abs(point.throughput_mb_s - 8.23) / 8.23 < 0.03)

    return checks


def render_validation(checks: List[Check]) -> str:
    width = max(len(c.name) for c in checks)
    lines = []
    for check in checks:
        mark = "PASS" if check.ok else "FAIL"
        lines.append(f"[{mark}] {check.name:<{width}}  paper={check.paper}"
                     f"  measured={check.measured}")
    passed = sum(c.ok for c in checks)
    lines.append(f"{passed}/{len(checks)} anchors reproduced")
    return "\n".join(lines)
