"""Eval surface for the fault campaign: reference SoC, full sweep.

``fault_sweep()`` is what the ``repro faults`` CLI command and the
recovery-rate benchmark call: build the reference platform, provision
it, and sweep every fault kind.  The heavy lifting (and the per-point
mechanics) live in :mod:`repro.faults.campaign`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eval.scenarios import reference_setup
from repro.faults.campaign import FaultSweepReport, run_fault_sweep, sweep_kinds
from repro.soc.config import SocConfig


def fault_sweep(*, points: int = 2, seed: int = 2026,
                kinds: Optional[Sequence[str]] = None,
                mode: str = "interrupt",
                module: Optional[str] = None,
                config: SocConfig | None = None) -> FaultSweepReport:
    """Run the fault campaign against a freshly provisioned reference SoC."""
    _soc, manager = reference_setup(config)
    return run_fault_sweep(manager, points=points, seed=seed,
                           kinds=sweep_kinds(kinds), mode=mode,
                           module=module)
