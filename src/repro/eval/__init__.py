"""Evaluation harness: regenerate every table and figure of the paper.

Each ``table*``/``figure*`` entry point runs the actual simulation (not
canned numbers — except the published values of third-party controllers
in Table II, which are literature data) and returns structured rows
plus a rendered text table, so the benchmark suite and EXPERIMENTS.md
are generated from one source of truth.
"""

from repro.eval.scenarios import (
    fig3_geometries,
    make_test_bitstream,
    reference_setup,
    small_rp,
)
from repro.eval.baselines import BASELINES, BaselineController
from repro.eval.tables import table1, table2, table3, table4
from repro.eval.figures import fig3_series, unroll_sweep

__all__ = [
    "reference_setup",
    "small_rp",
    "make_test_bitstream",
    "fig3_geometries",
    "BASELINES",
    "BaselineController",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig3_series",
    "unroll_sweep",
]
