"""Canonical evaluation scenarios and helpers."""

from __future__ import annotations

from typing import Iterable

from repro.drivers.manager import ReconfigurationManager
from repro.fpga.bitgen import Bitgen
from repro.fpga.bitstream import Bitstream
from repro.fpga.partition import (
    ReconfigurableModule,
    ReconfigurablePartition,
    ResourceBudget,
    RpGeometry,
)
from repro.soc.builder import build_soc
from repro.soc.config import SocConfig
from repro.soc.soc import Soc

#: the paper's reference partial-bitstream size (Sec. IV-A)
REFERENCE_PBIT_BYTES = 650_892


def reference_setup(config: SocConfig | None = None,
                    *, controller: str = "rvcap",
                    hwicap_unroll: int = 16) -> tuple[Soc, ReconfigurationManager]:
    """Build the reference SoC, provision the SD card, load the pbits."""
    soc = build_soc(config)
    manager = ReconfigurationManager(soc, controller=controller,
                                     hwicap_unroll=hwicap_unroll)
    manager.provision_sdcard()
    manager.init_rmodules()
    return soc, manager


def small_rp(name: str = "small") -> ReconfigurablePartition:
    """A small RP (~130 KB partial bitstream) for fast tests."""
    return ReconfigurablePartition(
        name=name,
        geometry=RpGeometry(clb_cols=4, bram_cols=1, dsp_cols=1, rows=1),
        budget=ResourceBudget(luts=1600, ffs=3200, brams=10, dsps=20),
    )


def make_test_bitstream(rp: ReconfigurablePartition | None = None,
                        module_name: str = "testmod") -> Bitstream:
    """A valid partial bitstream for a throwaway module."""
    rp = rp or small_rp()
    module = ReconfigurableModule(module_name,
                                  ResourceBudget(100, 100, 1, 1))
    return Bitgen(rp.device).generate(rp, module)


def fig3_geometries() -> list[tuple[str, RpGeometry]]:
    """The RP-size sweep of Fig. 3, smallest to largest.

    Sizes span ~134 KB to ~2 MB of partial bitstream; the largest point
    is sized so the amortized throughput peaks at the paper's measured
    maximum of 398.1 MB/s, and the reference RP (650 892 B) is one of
    the sweep points.
    """
    return [
        ("rp_xs", RpGeometry(4, 1, 1, 1)),        # 328 frames
        ("rp_s", RpGeometry(10, 2, 1, 1)),        # 700 frames
        ("rp_m", RpGeometry(18, 3, 2, 1)),        # 1172 frames
        ("rp_ref", RpGeometry(25, 4, 3, 1)),      # 1608 frames = 650 892 B
        ("rp_l", RpGeometry(25, 4, 3, 2)),        # 3216 frames
        ("rp_xl", RpGeometry(60, 8, 4, 1)),       # ~3520 frames
        ("rp_xxl", RpGeometry(118, 4, 2, 1)),     # 4928 frames -> 398.1 MB/s
    ]


def rp_for_geometry(name: str, geometry: RpGeometry) -> ReconfigurablePartition:
    """An RP with a generous budget for sweep bitstreams."""
    return ReconfigurablePartition(
        name=name,
        geometry=geometry,
        budget=ResourceBudget(luts=10**6, ffs=10**6, brams=10**4, dsps=10**4),
    )


def sweep_bitstream_sizes(geometries: Iterable[tuple[str, RpGeometry]] | None = None
                          ) -> list[tuple[str, int]]:
    """Expected PB sizes (bytes) for the Fig. 3 sweep."""
    gen = Bitgen()
    out = []
    for name, geometry in geometries or fig3_geometries():
        rp = rp_for_geometry(name, geometry)
        out.append((name, gen.expected_size_bytes(rp)))
    return out
