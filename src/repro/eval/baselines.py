"""State-of-the-art DPR controller models (Table II).

Resource figures and frequencies are the published values the paper
compares against (they are literature data we cannot re-measure); the
*throughput* of each controller is additionally reproduced from a small
architecture model — transfer class, port width, clock and per-transfer
overhead — so the table's ordering is derived, not transcribed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.resources.model import ResourceCost

#: ICAP physical ceiling at 100 MHz x 32 bit (Sec. IV-C)
ICAP_CEILING_MB_S = 400.0


class TransferClass(enum.Enum):
    """How the controller moves bitstream data."""

    DMA_MASTER = "dma"          # bus-master DMA feeding the ICAP
    CPU_COPY = "cpu"            # the CPU writes each word (slave IP)
    PCAP = "pcap"               # Zynq processor configuration port


@dataclass(frozen=True)
class BaselineController:
    """One Table II row."""

    name: str
    processor: str
    custom_drivers: bool
    resources: ResourceCost
    published_throughput_mb_s: float
    freq_mhz: float
    transfer_class: TransferClass
    #: DMA class: fraction of the ICAP ceiling sustained (burst
    #: efficiency); CPU class: average cycles per 32-bit word;
    #: PCAP: the port's own ceiling in MB/s.
    efficiency: float = 1.0
    cycles_per_word: float = 0.0
    port_ceiling_mb_s: float = 0.0

    def modeled_throughput_mb_s(self) -> float:
        """Throughput derived from the architecture model."""
        if self.transfer_class is TransferClass.DMA_MASTER:
            ceiling = self.freq_mhz * 4  # 32-bit words per cycle, MB/s
            return ceiling * self.efficiency
        if self.transfer_class is TransferClass.CPU_COPY:
            return self.freq_mhz * 4 / self.cycles_per_word
        return self.port_ceiling_mb_s


BASELINES: list[BaselineController] = [
    BaselineController(
        name="Vipin et al. [12]", processor="MicroBlaze", custom_drivers=False,
        resources=ResourceCost(586, 672, 8, 0),
        published_throughput_mb_s=399.8, freq_mhz=100,
        transfer_class=TransferClass.DMA_MASTER, efficiency=0.9995,
    ),
    BaselineController(
        name="ZyCAP [13]", processor="ARM", custom_drivers=True,
        resources=ResourceCost(620, 806, 0, 0),
        published_throughput_mb_s=382.0, freq_mhz=100,
        transfer_class=TransferClass.DMA_MASTER, efficiency=0.955,
    ),
    BaselineController(
        name="Anderson et al. [14]", processor="LEON3", custom_drivers=True,
        resources=ResourceCost(588, 278, 1, 0),
        published_throughput_mb_s=395.4, freq_mhz=100,
        transfer_class=TransferClass.DMA_MASTER, efficiency=0.9885,
    ),
    BaselineController(
        name="AC_ICAP [16]", processor="MicroBlaze", custom_drivers=False,
        resources=ResourceCost(1286, 1193, 22, 0),
        published_throughput_mb_s=380.47, freq_mhz=100,
        transfer_class=TransferClass.DMA_MASTER, efficiency=0.9512,
    ),
    BaselineController(
        name="RT-ICAP [15]", processor="Patmos", custom_drivers=True,
        resources=ResourceCost(289, 105, 0, 0),
        published_throughput_mb_s=382.2, freq_mhz=100,
        transfer_class=TransferClass.DMA_MASTER, efficiency=0.9555,
    ),
    BaselineController(
        name="PCAP [24]", processor="ARM", custom_drivers=False,
        resources=ResourceCost(0, 0, 0, 0),
        published_throughput_mb_s=128.0, freq_mhz=100,
        transfer_class=TransferClass.PCAP, port_ceiling_mb_s=128.0,
    ),
    BaselineController(
        name="Xilinx PRC [25]", processor="ARM", custom_drivers=False,
        resources=ResourceCost(1171, 1203, 0, 0),
        published_throughput_mb_s=396.5, freq_mhz=100,
        transfer_class=TransferClass.DMA_MASTER, efficiency=0.99125,
    ),
    BaselineController(
        name="Xilinx AXI_HWICAP [26]", processor="ARM", custom_drivers=False,
        resources=ResourceCost(538, 688, 0, 0),
        published_throughput_mb_s=14.3, freq_mhz=100,
        transfer_class=TransferClass.CPU_COPY, cycles_per_word=27.97,
    ),
]
