"""Reconfiguration-throughput measurement helpers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.drivers.fileio import RmDescriptor
from repro.drivers.hwicap_driver import HwIcapDriver
from repro.drivers.mmio import HostPort
from repro.drivers.rvcap_driver import ReconfigResult, RvCapDriver
from repro.eval.scenarios import rp_for_geometry
from repro.fpga.bitgen import Bitgen
from repro.fpga.partition import ReconfigurableModule, ResourceBudget, RpGeometry
from repro.soc.builder import build_soc
from repro.soc.config import SocConfig


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a reconfiguration-size sweep."""

    name: str
    pbit_bytes: int
    tr_us: float
    throughput_mb_s: float


def measure_reconfiguration(pbit: bytes, *, controller: str = "rvcap",
                            hwicap_unroll: int = 16,
                            mode: str = "interrupt",
                            config: SocConfig | None = None) -> ReconfigResult:
    """Time one reconfiguration of ``pbit`` through a fresh SoC.

    The bitstream is placed in DDR via the backdoor (the SD-card load
    time is not part of T_r in the paper's measurement protocol).
    """
    soc = build_soc(config, with_case_study_modules=False)
    src = soc.config.layout.ddr_base + (16 << 20)
    soc.ddr_write(src, pbit)
    port = HostPort(soc)
    descriptor = RmDescriptor(name="sweep", file_name="SWEEP.PBI",
                              start_address=src, pbit_size=len(pbit))
    if controller == "rvcap":
        return RvCapDriver(port).init_reconfig_process(descriptor, mode=mode)
    result = HwIcapDriver(port, unroll=hwicap_unroll).init_reconfig_process(descriptor)
    return result


def measure_size_sweep(geometries: list[tuple[str, RpGeometry]], *,
                       controller: str = "rvcap",
                       hwicap_unroll: int = 16) -> list[SweepPoint]:
    """Measure reconfiguration time across RP sizes (Fig. 3)."""
    gen = Bitgen()
    points = []
    for name, geometry in geometries:
        rp = rp_for_geometry(name, geometry)
        module = ReconfigurableModule(f"{name}_mod", ResourceBudget(1, 1, 0, 0))
        pbit = gen.generate(rp, module).to_bytes()
        result = measure_reconfiguration(pbit, controller=controller,
                                         hwicap_unroll=hwicap_unroll)
        points.append(SweepPoint(name=name, pbit_bytes=len(pbit),
                                 tr_us=result.tr_us,
                                 throughput_mb_s=result.throughput_mb_s))
    return points
