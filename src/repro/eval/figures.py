"""Regenerate the paper's figures (data series; plotting left to the
caller — these are terminal benchmarks, not a plotting package)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.eval.scenarios import fig3_geometries, rp_for_geometry
from repro.eval.throughput import SweepPoint, measure_size_sweep
from repro.firmware import build_hwicap_firmware, run_firmware
from repro.fpga.bitgen import Bitgen
from repro.fpga.partition import ReconfigurableModule, ResourceBudget, RpGeometry
from repro.soc.builder import build_soc


@dataclass
class Fig3Series:
    """Fig. 3: reconfiguration time vs RP (bitstream) size."""

    points: List[SweepPoint] = field(default_factory=list)

    @property
    def max_throughput_mb_s(self) -> float:
        return max(p.throughput_mb_s for p in self.points)

    def render(self) -> str:
        lines = [f"{'RP':8} {'PB bytes':>10} {'Tr (us)':>10} {'MB/s':>8}"]
        for p in self.points:
            lines.append(f"{p.name:8} {p.pbit_bytes:>10} {p.tr_us:>10.1f} "
                         f"{p.throughput_mb_s:>8.2f}")
        lines.append(f"max throughput: {self.max_throughput_mb_s:.1f} MB/s "
                     "(paper: 398.1)")
        return "\n".join(lines)


def fig3_series(*, controller: str = "rvcap") -> Fig3Series:
    """Measure the Fig. 3 sweep (reconfiguration time vs RP size)."""
    return Fig3Series(points=measure_size_sweep(fig3_geometries(),
                                                controller=controller))


@dataclass
class UnrollPoint:
    """One point of the Sec. IV-B loop-unrolling study."""

    unroll: int
    tr_us: float
    throughput_mb_s: float
    instructions: int


@dataclass
class UnrollSweep:
    points: List[UnrollPoint] = field(default_factory=list)

    def point(self, unroll: int) -> UnrollPoint:
        for p in self.points:
            if p.unroll == unroll:
                return p
        raise KeyError(unroll)

    def gain_beyond_16(self) -> float:
        """Relative throughput gain of the largest unroll over 16x."""
        beyond = [p for p in self.points if p.unroll > 16]
        if not beyond:
            return 0.0
        best = max(p.throughput_mb_s for p in beyond)
        return best / self.point(16).throughput_mb_s - 1.0

    def render(self) -> str:
        lines = [f"{'unroll':>6} {'Tr (us)':>12} {'MB/s':>8} {'instr':>10}"]
        for p in self.points:
            lines.append(f"{p.unroll:>6} {p.tr_us:>12.1f} "
                         f"{p.throughput_mb_s:>8.2f} {p.instructions:>10}")
        lines.append(
            f"gain beyond 16x: {100 * self.gain_beyond_16():.1f}% (paper: <5%)")
        return "\n".join(lines)


def unroll_sweep(unrolls: tuple[int, ...] = (1, 2, 4, 8, 16, 32), *,
                 geometry: RpGeometry | None = None) -> UnrollSweep:
    """The Sec. IV-B unroll study, run as firmware on the ISS.

    Uses a reduced bitstream by default (throughput is size-insensitive
    for the CPU-copy path); pass the reference geometry for the full
    650 892-byte measurement.
    """
    geometry = geometry or RpGeometry(4, 1, 1, 1)
    rp = rp_for_geometry("unroll_rp", geometry)
    module = ReconfigurableModule("unroll_mod", ResourceBudget(1, 1, 0, 0))
    pbit = Bitgen().generate(rp, module).to_bytes()
    sweep = UnrollSweep()
    for unroll in unrolls:
        soc = build_soc(with_case_study_modules=False)
        src = soc.config.layout.ddr_base + (16 << 20)
        soc.ddr_write(src, pbit)
        firmware = build_hwicap_firmware(src, len(pbit), unroll=unroll)
        result = run_firmware(soc, firmware)
        if not result.done or soc.icap.error:
            raise RuntimeError(f"unroll={unroll} firmware run failed")
        us = result.elapsed_us()
        sweep.points.append(UnrollPoint(
            unroll=unroll,
            tr_us=us,
            throughput_mb_s=len(pbit) / (us * 1e-6) / 1e6,
            instructions=result.instructions,
        ))
    return sweep
