"""Regenerate the paper's tables from live simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.accel import GOLDEN_FILTERS, scene_image
from repro.drivers.manager import ExecutionTimes
from repro.eval.baselines import BASELINES
from repro.eval.scenarios import fig3_geometries, reference_setup
from repro.eval.throughput import measure_reconfiguration, measure_size_sweep
from repro.resources.library import (
    axi_dma,
    axi_hwicap_ip,
    full_soc_report,
    hwicap_axi_modules,
    hwicap_controller,
    reconfigurable_partition,
    rp_control_and_axi_modules,
    rvcap_controller,
)
from repro.resources.model import ResourceCost


def _fmt_row(cells: list, widths: list[int]) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths,
                                                      strict=True))


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------
@dataclass
class Table1Row:
    controller: str
    module: str
    resources: ResourceCost
    throughput_mb_s: Optional[float] = None


@dataclass
class Table1:
    rows: List[Table1Row] = field(default_factory=list)

    def throughput(self, controller: str) -> float:
        for row in self.rows:
            if row.controller == controller and row.throughput_mb_s is not None:
                return row.throughput_mb_s
        raise KeyError(controller)

    def render(self) -> str:
        widths = [12, 26, 7, 7, 6, 12]
        lines = [_fmt_row(["Controller", "Modules", "LUTs", "FFs", "BRAMs",
                           "Tput (MB/s)"], widths)]
        for row in self.rows:
            tput = f"{row.throughput_mb_s:.2f}" if row.throughput_mb_s else ""
            lines.append(_fmt_row(
                [row.controller, row.module, row.resources.luts,
                 row.resources.ffs, row.resources.brams, tput], widths))
        return "\n".join(lines)


def table1(*, hwicap_unroll: int = 16,
           hwicap_mode: str = "firmware") -> Table1:
    """Table I: RV-CAP vs AXI_HWICAP resources and throughput.

    RV-CAP throughput is the sweep maximum (the paper's 398.1 MB/s
    point).  The HWICAP number runs the Listing-2 copy loop as real
    RISC-V firmware on the ISS by default (the paper's measurement is
    instruction-level); pass ``hwicap_mode="host"`` for the faster
    host-driver estimate.  Both use a reduced bitstream — the CPU-copy
    throughput is size-insensitive.
    """
    # throughput: RV-CAP at the largest Fig.3 sweep point
    sweep = measure_size_sweep([fig3_geometries()[-1]])
    rvcap_tput = sweep[0].throughput_mb_s

    if hwicap_mode == "firmware":
        from repro.eval.figures import unroll_sweep
        hwicap_tput = unroll_sweep((hwicap_unroll,)).points[0].throughput_mb_s
    else:
        from repro.eval.scenarios import make_test_bitstream
        pbit = make_test_bitstream().to_bytes()
        result = measure_reconfiguration(pbit, controller="hwicap",
                                         hwicap_unroll=hwicap_unroll)
        hwicap_tput = result.throughput_mb_s

    table = Table1()
    table.rows.append(Table1Row("RV-CAP", "RP cntrl. + AXI modules",
                                rp_control_and_axi_modules(), rvcap_tput))
    table.rows.append(Table1Row("RV-CAP", "DMA Cntrl.", axi_dma()))
    table.rows.append(Table1Row("AXI_HWICAP", "HWICAP AXI modules",
                                hwicap_axi_modules(), hwicap_tput))
    table.rows.append(Table1Row("AXI_HWICAP", "AXI_HWICAP", axi_hwicap_ip()))
    return table


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------
@dataclass
class Table2Row:
    name: str
    processor: str
    custom_drivers: bool
    resources: ResourceCost
    throughput_mb_s: float
    freq_mhz: float
    is_ours: bool = False


@dataclass
class Table2:
    rows: List[Table2Row] = field(default_factory=list)

    def render(self) -> str:
        widths = [34, 11, 8, 7, 7, 6, 12, 6]
        lines = [_fmt_row(["DPR Controller", "Processor", "Drivers", "LUTs",
                           "FFs", "BRAMs", "Tput (MB/s)", "MHz"], widths)]
        for row in self.rows:
            lines.append(_fmt_row(
                [row.name, row.processor, "yes" if row.custom_drivers else "-",
                 row.resources.luts, row.resources.ffs, row.resources.brams,
                 f"{row.throughput_mb_s:.2f}", int(row.freq_mhz)], widths))
        return "\n".join(lines)

    def ours(self) -> List[Table2Row]:
        return [row for row in self.rows if row.is_ours]


def table2(*, measured_rvcap: float | None = None,
           measured_hwicap: float | None = None,
           hwicap_unroll: int = 16) -> Table2:
    """Table II: the state-of-the-art comparison.

    Third-party rows carry published values (validated against each
    controller's architecture model); our two rows are measured unless
    values are passed in.
    """
    table = Table2()
    for baseline in BASELINES:
        table.rows.append(Table2Row(
            name=baseline.name,
            processor=baseline.processor,
            custom_drivers=baseline.custom_drivers,
            resources=baseline.resources,
            throughput_mb_s=baseline.published_throughput_mb_s,
            freq_mhz=baseline.freq_mhz,
        ))
    if measured_hwicap is None or measured_rvcap is None:
        t1 = table1(hwicap_unroll=hwicap_unroll)
        measured_rvcap = measured_rvcap or t1.throughput("RV-CAP")
        measured_hwicap = measured_hwicap or t1.throughput("AXI_HWICAP")
    table.rows.append(Table2Row(
        name="Xilinx AXI_HWICAP (with RISC-V)", processor="RV64GC",
        custom_drivers=True, resources=hwicap_controller(),
        throughput_mb_s=measured_hwicap, freq_mhz=100, is_ours=True))
    table.rows.append(Table2Row(
        name="RV-CAP", processor="RV64GC", custom_drivers=True,
        resources=rvcap_controller(), throughput_mb_s=measured_rvcap,
        freq_mhz=100, is_ours=True))
    return table


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------
@dataclass
class Table3Row:
    component: str
    resources: ResourceCost
    rp_utilization: Optional[dict] = None  # for RM rows


@dataclass
class Table3:
    rows: List[Table3Row] = field(default_factory=list)

    def component(self, name: str) -> Table3Row:
        for row in self.rows:
            if row.component == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        widths = [26, 7, 7, 6, 5, 30]
        lines = [_fmt_row(["Component", "LUTs", "FFs", "BRAMs", "DSPs",
                           "% of RP (L/F/B/D)"], widths)]
        for row in self.rows:
            pct = ""
            if row.rp_utilization:
                u = row.rp_utilization
                pct = (f"{u['luts']:.2f}/{u['ffs']:.2f}/"
                       f"{u['brams']:.2f}/{u['dsps']:.2f}")
            r = row.resources
            lines.append(_fmt_row([row.component, r.luts, r.ffs, r.brams,
                                   r.dsps, pct], widths))
        return "\n".join(lines)


def table3() -> Table3:
    """Table III: full-SoC utilization with the RM breakdown."""
    from repro.accel import ACCELERATOR_RESOURCES
    report = full_soc_report()
    table = Table3()
    table.rows.append(Table3Row("Full SoC", report.total))
    for child in report.children:
        table.rows.append(Table3Row(child.name, child.total))
    rp_budget = reconfigurable_partition()
    for name in ("gaussian", "median", "sobel"):
        res = ACCELERATOR_RESOURCES[name]
        cost = ResourceCost(res.luts, res.ffs, res.brams, res.dsps)
        table.rows.append(Table3Row(
            f"RM: {name.capitalize()}", cost,
            rp_utilization=cost.utilization_of(rp_budget)))
    return table


# ---------------------------------------------------------------------------
# Table IV
# ---------------------------------------------------------------------------
@dataclass
class Table4:
    rows: List[ExecutionTimes] = field(default_factory=list)
    outputs_match_golden: bool = True

    def row(self, name: str) -> ExecutionTimes:
        for row in self.rows:
            if row.accelerator == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        widths = [12, 10, 10, 10, 10]
        lines = [_fmt_row(["Accelerator", "Td (us)", "Tr (us)", "Tc (us)",
                           "Tex (us)"], widths)]
        for row in self.rows:
            lines.append(_fmt_row(
                [row.accelerator, f"{row.td_us:.1f}", f"{row.tr_us:.1f}",
                 f"{row.tc_us:.1f}", f"{row.tex_us:.1f}"], widths))
        return "\n".join(lines)


def table4(image: np.ndarray | None = None) -> Table4:
    """Table IV: the adaptive image-processing case study."""
    _soc, manager = reference_setup()
    image = image if image is not None else scene_image(512)
    table = Table4()
    for name in ("gaussian", "median", "sobel"):
        manager.loaded_module = None  # force a reconfiguration per row
        output, times = manager.process_image(name, image)
        table.rows.append(times)
        if not np.array_equal(output, GOLDEN_FILTERS[name](image)):
            table.outputs_match_golden = False
    return table
