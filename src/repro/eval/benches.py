"""Canonical perf-bench workloads, shared by the harness and the CLI.

``benchmarks/perf.py`` times these bodies for the regression gate;
``python -m repro profile`` runs the same bodies under cProfile so the
per-function attribution matches the numbers the gate sees.  Each bench
returns the number of simulated payload bytes it pushed through the
model, so MB/s is comparable across machines.
"""

from __future__ import annotations

from typing import Callable, Dict


def _reference_pbit() -> bytes:
    from repro.eval.scenarios import rp_for_geometry
    from repro.fpga.bitgen import Bitgen
    from repro.fpga.partition import (
        ReconfigurableModule,
        ResourceBudget,
        RpGeometry,
    )

    rp = rp_for_geometry("rp_ref", RpGeometry(25, 4, 3, 1))
    module = ReconfigurableModule("ref_mod", ResourceBudget(1, 1, 0, 0))
    return Bitgen().generate(rp, module).to_bytes()


def bench_bitgen_ref() -> int:
    """Assemble the reference partial bitstream (CRC-heavy)."""
    return len(_reference_pbit())


def bench_icap_stream() -> int:
    """Parse the reference bitstream through a bare ICAP model."""
    from repro.fpga.config_memory import ConfigMemory
    from repro.fpga.device import KINTEX7_325T
    from repro.fpga.icap import Icap

    pbit = _reference_pbit()
    Icap(ConfigMemory(KINTEX7_325T)).accept(pbit, 0)
    return len(pbit)


def bench_e2e_reconfig() -> int:
    """Full DMA -> ICAP reconfiguration of the reference bitstream."""
    from repro.eval.throughput import measure_reconfiguration

    pbit = _reference_pbit()
    measure_reconfiguration(pbit)
    return len(pbit)


def bench_table2() -> int:
    """Reproduce Table II (RV-CAP and HWICAP throughput rows)."""
    from repro.eval.tables import table2

    table2()
    # both controller rows stream the reference partial bitstream
    return 2 * 650_892


def bench_table2_obs() -> int:
    """Table II with full observability attached (tracer-on cost)."""
    from repro.eval.tables import table2
    from repro.obs import Observability, set_default_observability

    set_default_observability(Observability())
    try:
        table2()
    finally:
        set_default_observability(None)
    return 2 * 650_892


def bench_iss_unroll() -> int:
    """Firmware-driven unroll sweep at factor 16 (ISS-bound)."""
    from repro.eval.figures import unroll_sweep

    unroll_sweep((16,))
    return 133_772


def bench_sched_replay() -> int:
    """Replay a 400-request stream through the asyncio DPR scheduler."""
    from repro.sched import WorkloadSpec, bench

    spec = WorkloadSpec(requests=400, arrival_rate_rps=2000.0, modules=8,
                        frame=32, deadline_slack_us=20_000.0, seed=2026)
    report = bench(spec, cache_bytes=1 << 20)
    # payload bytes streamed both directions plus SD-faulted pbit bytes
    frame_bytes = spec.frame * spec.frame
    return 2 * frame_bytes * report.completed + \
        int(report.cache["sd_bytes_loaded"])


def bench_power_replay() -> int:
    """bench_sched_replay's workload with full power accounting on.

    Same spec, platform and request stream as ``sched_replay`` plus a
    power profile and peak-power governor, so the pair measures exactly
    the marginal cost of energy accounting on the serving path (the
    ``power_replay`` A/B gate in benchmarks/perf.py).
    """
    from repro.power import DEFAULT_PROFILE
    from repro.sched import WorkloadSpec, bench

    spec = WorkloadSpec(requests=400, arrival_rate_rps=2000.0, modules=8,
                        frame=32, deadline_slack_us=20_000.0, seed=2026)
    report = bench(spec, cache_bytes=1 << 20,
                   power_profile=DEFAULT_PROFILE, peak_power_mw=400.0,
                   power_window_us=2000.0)
    frame_bytes = spec.frame * spec.frame
    return 2 * frame_bytes * report.completed + \
        int(report.cache["sd_bytes_loaded"])


def bench_fault_sweep() -> int:
    """One fault-campaign point per fault kind on the reference SoC."""
    from repro.eval.fault_sweep import fault_sweep
    from repro.faults.campaign import sweep_kinds

    report = fault_sweep(points=1, seed=2026)
    return report.points * 650_892 if report.points else len(sweep_kinds(None)) * 650_892


BENCHES: Dict[str, Callable[[], int]] = {
    "bitgen_ref": bench_bitgen_ref,
    "icap_stream": bench_icap_stream,
    "e2e_reconfig": bench_e2e_reconfig,
    "table2": bench_table2,
    "table2_obs": bench_table2_obs,
    "iss_unroll": bench_iss_unroll,
    "fault_sweep": bench_fault_sweep,
    "sched_replay": bench_sched_replay,
    "power_replay": bench_power_replay,
}

#: short historical names the CLI accepted before the registries merged
ALIASES: Dict[str, str] = {
    "bitgen": "bitgen_ref",
    "icap": "icap_stream",
    "reconfig": "e2e_reconfig",
    "unroll": "iss_unroll",
    "faults": "fault_sweep",
}


def resolve_bench(name: str) -> Callable[[], int]:
    """The bench body for a canonical name or a historical alias."""
    return BENCHES[ALIASES.get(name, name)]
