"""The simulation kernel: an event queue with generator processes.

Design notes
------------
The queue is a binary heap keyed by ``(cycle, sequence)``; the sequence
number makes scheduling stable (FIFO among same-cycle events), which the
bus arbitration models rely on.

Processes are plain generators that yield :class:`Delay` or
:class:`WaitEvent`.  This gives hardware models the familiar
"cooperative coroutine" structure (cf. simpy / cocotb) without any
threading.  Bulk data movement is modelled at *burst* granularity — one
event per AXI burst, not per beat — which keeps full-bitstream transfers
to a few thousand events (see the HPC guide's advice: do the work in
bulk, not per element).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.event import Event


@dataclass(frozen=True)
class Delay:
    """Yielded by a process to suspend for ``cycles`` clock cycles."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True)
class WaitEvent:
    """Yielded by a process to suspend until ``event`` triggers."""

    event: Event


ProcessGen = Generator[Any, Any, Any]


class _Process:
    __slots__ = ("gen", "name", "finished", "result")

    def __init__(self, gen: ProcessGen, name: str) -> None:
        self.gen = gen
        self.name = name
        self.finished = Event(f"{name}.finished")
        self.result: Any = None


class Simulator:
    """Cycle-resolution discrete-event simulator.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(10, lambda: hits.append(sim.now))
    >>> sim.run()
    >>> hits
    [10]
    """

    def __init__(self, freq_hz: float = 100e6) -> None:
        self.freq_hz = float(freq_hz)
        self._now = 0
        self._seq = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._running = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds."""
        return self._now / self.freq_hz * 1e6

    def cycles_to_us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds at this clock."""
        return cycles / self.freq_hz * 1e6

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` cycles (>= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``cycle``."""
        if cycle < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {cycle}, now is {self._now}"
            )
        heapq.heappush(self._queue, (cycle, self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def add_process(self, gen: ProcessGen, name: str = "proc") -> Event:
        """Register a generator process; returns its completion event.

        The process starts at the current simulation time.  It may yield:

        * :class:`Delay` — resume after N cycles,
        * :class:`WaitEvent` — resume when the event triggers (the
          event's payload is sent back into the generator),
        * an :class:`Event` directly, as shorthand for ``WaitEvent``.
        """
        proc = _Process(gen, name)
        self.schedule(0, lambda: self._step_process(proc, None))
        return proc.finished

    def _step_process(self, proc: _Process, send_value: Any) -> None:
        try:
            yielded = proc.gen.send(send_value)
        except StopIteration as stop:
            proc.result = stop.value
            proc.finished.trigger(stop.value)
            return
        if isinstance(yielded, Delay):
            self.schedule(yielded.cycles, lambda: self._step_process(proc, None))
        elif isinstance(yielded, WaitEvent):
            yielded.event.on_trigger(
                lambda value: self.schedule(0, lambda: self._step_process(proc, value))
            )
        elif isinstance(yielded, Event):
            yielded.on_trigger(
                lambda value: self.schedule(0, lambda: self._step_process(proc, value))
            )
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded unsupported value {yielded!r}"
            )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_next_time(self) -> Optional[int]:
        """Time of the earliest pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Process the single earliest event.  Returns False when idle."""
        if not self._queue:
            return False
        cycle, _seq, callback = heapq.heappop(self._queue)
        self._now = cycle
        self.events_processed += 1
        callback()
        return True

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> None:
        """Run until the queue drains or ``until`` cycles is reached.

        ``max_events`` guards against accidental infinite event loops in
        model code; hitting it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            remaining = max_events
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self._now = until
                    return
                self.step()
                remaining -= 1
                if remaining <= 0:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway model?"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def advance_to(self, cycle: int) -> None:
        """Advance the clock directly (used by the CPU co-sim quantum).

        Any events scheduled before ``cycle`` are executed first so the
        CPU never observes stale device state.
        """
        if cycle < self._now:
            raise SimulationError(f"advance_to({cycle}) is in the past ({self._now})")
        while self._queue and self._queue[0][0] <= cycle:
            self.step()
        self._now = cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now} pending={len(self._queue)}>"
