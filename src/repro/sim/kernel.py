"""The simulation kernel: an event queue with generator processes.

Design notes
------------
The queue is a binary heap keyed by ``(cycle, sequence)``; the sequence
number makes scheduling stable (FIFO among same-cycle events), which the
bus arbitration models rely on.

Processes are plain generators that yield :class:`Delay` or
:class:`WaitEvent`.  This gives hardware models the familiar
"cooperative coroutine" structure (cf. simpy / cocotb) without any
threading.  Bulk data movement is modelled at *burst* granularity — one
event per AXI burst, not per beat — which keeps full-bitstream transfers
to a few thousand events (see the HPC guide's advice: do the work in
bulk, not per element).

Fast path
---------
Two layers keep the kernel itself off the profile:

* Every :class:`_Process` carries one preallocated bound ``resume``
  callable (created at construction, reused for every ``Delay``), so
  stepping a process allocates no closures.  Event waits stash the
  trigger payload on the process and reuse a second preallocated
  continuation.

* A *batch window* lets a running callback advance virtual time itself
  instead of yielding one event per pacing step.  ``batch_window()``
  returns the earliest time the callback must NOT reach — the minimum of
  the next queued event and the current *horizon* (the time the caller
  of ``run``/``advance_to`` promised not to observe fine-grained state
  before).  While a callback keeps its virtual position strictly below
  that bound, executing work eagerly and calling ``batch_advance`` is
  observationally identical to yielding per-step delays: no other event
  and no observer can interleave inside the window.  The DMA descriptor
  engine (``core/dma.py``) is the main client.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.event import Event

_INF = float("inf")


@dataclass(frozen=True)
class Delay:
    """Yielded by a process to suspend for ``cycles`` clock cycles."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True)
class WaitEvent:
    """Yielded by a process to suspend until ``event`` triggers."""

    event: Event


ProcessGen = Generator[Any, Any, Any]


class _Process:
    __slots__ = ("gen", "name", "finished", "result", "sim",
                 "resume", "_event_value", "_event_resume")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str) -> None:
        self.gen = gen
        self.name = name
        self.finished = Event(f"{name}.finished")
        self.result: Any = None
        self.sim = sim
        # Preallocated continuations: one per process, reused for every
        # step — the kernel never builds per-event lambdas for processes.
        self.resume = self._resume
        self._event_value: Any = None
        self._event_resume = self._resume_event

    def _resume(self) -> None:
        self._step(None)

    def _resume_event(self) -> None:
        value, self._event_value = self._event_value, None
        self._step(value)

    def _on_event(self, value: Any) -> None:
        self._event_value = value
        self.sim.schedule(0, self._event_resume)

    def _step(self, send_value: Any) -> None:
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.result = stop.value
            self.finished.trigger(stop.value)
            return
        cls = type(yielded)
        if cls is Delay:
            self.sim.schedule(yielded.cycles, self.resume)
        elif cls is WaitEvent:
            yielded.event.on_trigger(self._on_event)
        elif isinstance(yielded, Event):
            yielded.on_trigger(self._on_event)
        elif isinstance(yielded, Delay):
            self.sim.schedule(yielded.cycles, self.resume)
        elif isinstance(yielded, WaitEvent):
            yielded.event.on_trigger(self._on_event)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )


class Simulator:
    """Cycle-resolution discrete-event simulator.

    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(10, lambda: hits.append(sim.now))
    >>> sim.run()
    >>> hits
    [10]
    """

    def __init__(self, freq_hz: float = 100e6) -> None:
        self.freq_hz = float(freq_hz)
        self._now = 0
        self._seq = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._running = False
        self._horizon: float = 0
        self.events_processed = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds."""
        return self._now / self.freq_hz * 1e6

    def cycles_to_us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds at this clock."""
        return cycles / self.freq_hz * 1e6

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` cycles (>= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``cycle``."""
        if cycle < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {cycle}, now is {self._now}"
            )
        heapq.heappush(self._queue, (cycle, self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def add_process(self, gen: ProcessGen, name: str = "proc") -> Event:
        """Register a generator process; returns its completion event.

        The process starts at the current simulation time.  It may yield:

        * :class:`Delay` — resume after N cycles,
        * :class:`WaitEvent` — resume when the event triggers (the
          event's payload is sent back into the generator),
        * an :class:`Event` directly, as shorthand for ``WaitEvent``.
        """
        proc = _Process(self, gen, name)
        self.schedule(0, proc.resume)
        return proc.finished

    # ------------------------------------------------------------------
    # batch window (see module docstring)
    # ------------------------------------------------------------------
    def batch_window(self) -> float:
        """Earliest time the running callback must not reach virtually.

        The minimum of the next queued event's time and the current
        horizon.  A callback may execute work eagerly (and call
        :meth:`batch_advance`) while its virtual position stays strictly
        below this bound; the result is indistinguishable from yielding
        one ``Delay`` per step because nothing can interleave before it.
        """
        queue = self._queue
        nxt: float = queue[0][0] if queue else _INF
        horizon = self._horizon
        return nxt if nxt < horizon else horizon

    def batch_advance(self, cycle: int) -> None:
        """Move the clock forward from inside a running callback.

        Caller guarantees ``now <= cycle < batch_window()``; the kernel
        keeps the heap invariant (no queued event precedes ``now``)
        because the window is bounded by the next queued event.
        """
        self._now = cycle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_next_time(self) -> Optional[int]:
        """Time of the earliest pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Process the single earliest event.  Returns False when idle."""
        queue = self._queue
        if not queue:
            return False
        cycle, _seq, callback = heapq.heappop(queue)
        self._now = cycle
        self._horizon = cycle
        self.events_processed += 1
        callback()
        return True

    def run(self, until: Optional[int] = None, max_events: int = 50_000_000) -> None:
        """Run until the queue drains or ``until`` cycles is reached.

        ``max_events`` guards against accidental infinite event loops in
        model code; hitting it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._horizon = _INF if until is None else until
        heappop = heapq.heappop
        queue = self._queue
        try:
            remaining = max_events
            while queue:
                cycle = queue[0][0]
                if until is not None and cycle > until:
                    self._now = until
                    return
                # Same-cycle run-batch: drain every event at this cycle
                # before re-checking the stop condition.
                while queue and queue[0][0] == cycle:
                    cycle_, _seq, callback = heappop(queue)
                    self._now = cycle_
                    self.events_processed += 1
                    callback()
                    remaining -= 1
                    if remaining <= 0:
                        raise SimulationError(
                            f"exceeded {max_events} events; runaway model?"
                        )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def advance_to(self, cycle: int, horizon: Optional[int] = None) -> None:
        """Advance the clock directly (used by the CPU co-sim quantum).

        Any events scheduled before ``cycle`` are executed first so the
        CPU never observes stale device state.

        ``horizon`` — when given — is the caller's promise not to
        observe fine-grained device state before that time (e.g. a
        ``wait_for`` whose predicate only reads event-gated status
        registers passes its timeout deadline).  Batching callbacks use
        it to widen their window; it never affects where the clock
        lands.  Defaults to ``cycle`` (fully conservative).
        """
        if cycle < self._now:
            raise SimulationError(f"advance_to({cycle}) is in the past ({self._now})")
        self._horizon = cycle if horizon is None or horizon < cycle else horizon
        queue = self._queue
        heappop = heapq.heappop
        pops = 0
        # Bulk pop: grab every event at or before `cycle` without
        # re-peeking through step()'s guards per event.
        while queue and queue[0][0] <= cycle:
            event_cycle, _seq, callback = heappop(queue)
            self._now = event_cycle
            pops += 1
            callback()
        if pops:
            self.events_processed += pops
        if cycle > self._now:
            self._now = cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now} pending={len(self._queue)}>"
