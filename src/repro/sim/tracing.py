"""Event tracing and statistics collection.

A :class:`TraceRecorder` collects timestamped events from instrumented
components (DMA transfers, ICAP completions, driver API calls) so users
can reconstruct what the SoC did and when — the observability layer a
production simulator needs.  Recording is opt-in and costs nothing when
no recorder is attached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    category: str
    message: str

    def format(self, freq_hz: float = 100e6) -> str:
        us = self.cycle / freq_hz * 1e6
        return f"[{us:12.2f} us] {self.category:12} {self.message}"


class TraceRecorder:
    """Bounded in-memory event log with per-category filtering.

    The buffer is a *ring*: when full, recording a new event evicts the
    oldest one, so the log always holds the most recent ``capacity``
    events of a long run (the interesting tail, not the boring start).
    ``dropped`` counts the evictions.
    """

    def __init__(self, capacity: int = 100_000,
                 enabled_categories: Optional[set[str]] = None) -> None:
        self.capacity = capacity
        self.enabled_categories = enabled_categories
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def record(self, cycle: int, category: str, message: str) -> None:
        if (self.enabled_categories is not None
                and category not in self.enabled_categories):
            return
        if len(self._ring) >= self.capacity:
            self.dropped += 1
        self._ring.append(TraceEvent(cycle, category, message))

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self._ring if e.category == category]

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    def format_timeline(self, freq_hz: float = 100e6,
                        limit: int | None = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(event.format(freq_hz) for event in events)


class Instrumented:
    """Mixin/holder: components emit through an optional recorder."""

    def __init__(self) -> None:
        self.trace: Optional[TraceRecorder] = None

    def emit(self, cycle: int, category: str, message: str) -> None:
        if self.trace is not None:
            self.trace.record(cycle, category, message)


def collect_soc_stats(soc) -> Dict[str, int | float]:
    """Snapshot of the SoC's counters (cheap, side-effect free)."""
    stats: Dict[str, int | float] = {
        "sim_cycles": soc.sim.now,
        "sim_time_us": soc.sim.now_us,
        "sim_events": soc.sim.events_processed,
        "xbar_transactions": soc.xbar.transactions,
        "xbar_decode_errors": soc.xbar.decode_errors,
        "ddr_bytes_read": soc.ddr.bytes_read,
        "ddr_bytes_written": soc.ddr.bytes_written,
        "icap_words": soc.icap.words_consumed,
        "icap_reconfigurations": soc.icap.reconfigurations_completed,
        "icap_errors": int(soc.icap.error),
        "config_frames_written": soc.config_memory.frames_written,
        "dma_mm2s_transfers": soc.rvcap.dma.mm2s.transfers_completed,
        "dma_s2mm_transfers": soc.rvcap.dma.s2mm.transfers_completed,
        "hwicap_words": soc.hwicap.words_transferred,
        "plic_claims": soc.plic.claims,
        "spi_transfers": soc.spi.transfers,
        "sd_reads": soc.sdcard.reads,
        "sd_writes": soc.sdcard.writes,
    }
    if soc.hart is not None:
        stats.update({
            "cpu_instructions": soc.hart.instret,
            "cpu_cycles": soc.hart.cycles,
            "cpu_mmio_accesses": soc.hart.mmio_accesses,
            "cpu_traps": soc.hart.trap_count,
            "dcache_hits": soc.hart.dcache.hits,
            "dcache_misses": soc.hart.dcache.misses,
        })
    return stats


def format_stats(stats: Dict[str, int | float]) -> str:
    if not stats:
        return ""
    width = max(len(k) for k in stats)
    lines = []
    for key, value in stats.items():
        if isinstance(value, float):
            lines.append(f"{key:<{width}}  {value:,.2f}")
        else:
            lines.append(f"{key:<{width}}  {value:,}")
    return "\n".join(lines)
