"""One-shot notification events for the simulation kernel."""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A one-shot event that processes and callbacks can wait on.

    Mirrors the semantics of a hardware "done" pulse latched into a
    status flag: once triggered it stays triggered, and late waiters are
    notified immediately.  Use :meth:`reset` to re-arm for reuse (e.g. a
    DMA completion interrupt that fires once per transfer).
    """

    __slots__ = ("name", "_triggered", "_value", "_callbacks")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        """True once :meth:`trigger` has been called (until reset)."""
        return self._triggered

    @property
    def value(self) -> Any:
        """Payload passed to :meth:`trigger`, or None."""
        return self._value

    def on_trigger(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; fires immediately if triggered."""
        if self._triggered:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters exactly once."""
        if self._triggered:
            return
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def reset(self) -> None:
        """Re-arm the event for another trigger."""
        self._triggered = False
        self._value = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name or id(self):x} {state}>"
