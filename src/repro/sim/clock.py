"""Clock-domain helpers.

The reference SoC runs fully synchronous at 100 MHz (the ICAP limit on
7-series parts), but the CLINT real-time counter ticks at 5 MHz — the
paper measures all reconfiguration times with that 5 MHz timer, which
quantizes measurements to 200 ns.  :class:`DerivedClock` models exactly
that integer divider relationship.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class Clock:
    """A clock domain with a frequency in Hz."""

    name: str
    freq_hz: float

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise SimulationError(f"clock {self.name!r} needs a positive frequency")

    @property
    def period_ns(self) -> float:
        return 1e9 / self.freq_hz

    def cycles_for_us(self, us: float) -> int:
        """Number of this clock's cycles covering ``us`` microseconds."""
        return round(us * 1e-6 * self.freq_hz)


class DerivedClock:
    """A slower clock derived from a master clock by an integer divider."""

    def __init__(self, name: str, master: Clock, divider: int) -> None:
        if divider < 1:
            raise SimulationError("divider must be >= 1")
        self.name = name
        self.master = master
        self.divider = divider
        self.clock = Clock(name, master.freq_hz / divider)

    @property
    def freq_hz(self) -> float:
        return self.clock.freq_hz

    def ticks_at(self, master_cycles: int) -> int:
        """Count of derived-clock ticks elapsed after ``master_cycles``."""
        return master_cycles // self.divider

    def master_cycles_for_ticks(self, ticks: int) -> int:
        """Master-clock cycles spanned by ``ticks`` derived ticks."""
        return ticks * self.divider
