"""Discrete-event simulation kernel.

Time is measured in integer *cycles* of the SoC main clock (100 MHz in
the paper's reference configuration).  Components interact either via
scheduled callbacks (:meth:`Simulator.schedule`) or generator-based
processes (:meth:`Simulator.add_process`) that ``yield`` wait conditions.
"""

from repro.sim.event import Event
from repro.sim.kernel import Delay, Simulator, WaitEvent
from repro.sim.clock import Clock, DerivedClock
from repro.sim.tracing import TraceEvent, TraceRecorder, collect_soc_stats

__all__ = [
    "Event",
    "Simulator",
    "Delay",
    "WaitEvent",
    "Clock",
    "DerivedClock",
    "TraceEvent",
    "TraceRecorder",
    "collect_soc_stats",
]
