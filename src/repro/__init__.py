"""RV-CAP: dynamic partial reconfiguration for FPGA-based RISC-V SoCs.

A full-system simulation reproduction of *"RV-CAP: Enabling Dynamic
Partial Reconfiguration for FPGA-Based RISC-V System-on-Chip"* (Charaf
et al., 2021): the RV-CAP DPR controller and its software drivers, the
AXI_HWICAP baseline, an RV64IMAC instruction-set simulator standing in
for the CVA6 (Ariane) core, a 7-series-style configuration fabric with
a real bitstream format and ICAP model, SD-card/FAT32 storage, and the
adaptive image-processing case study.

Quickstart::

    from repro import build_soc, ReconfigurationManager
    from repro.accel import scene_image

    soc = build_soc()
    manager = ReconfigurationManager(soc)
    manager.provision_sdcard()
    manager.init_rmodules()
    output, times = manager.process_image("sobel", scene_image())
    print(times)  # Td / Tr / Tc / Tex, as in Table IV

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro.drivers.manager import ExecutionTimes, ReconfigurationManager
from repro.drivers.rvcap_driver import ReconfigResult
from repro.soc.builder import build_soc
from repro.soc.config import MemoryLayout, SocConfig, TimingParams

__version__ = "1.0.0"

__all__ = [
    "build_soc",
    "ReconfigurationManager",
    "ExecutionTimes",
    "ReconfigResult",
    "SocConfig",
    "MemoryLayout",
    "TimingParams",
    "__version__",
]
