"""Cross-layer static artifact verifier.

Two verifiers prove properties about the artifacts the DPR serving
path consumes, *before* they ever touch the modelled hardware:

* :func:`verify_firmware` — reconstructs the control-flow graph of an
  assembled firmware image, abstract-interprets register values, and
  checks every statically-resolvable MMIO access against the live SoC
  address map and per-register write masks (rules ``VFY-FW-*``).
* :func:`verify_bitstream` — statically walks the type-1/type-2
  configuration packet stream, proves the FAR coverage is exactly the
  declared partition's frame set, checks CRC/desync protocol and
  emits a relocatability verdict (rules ``VFY-BIT-*``).

Both emit :class:`repro.lint.findings.Finding` records, surface
through ``repro verify`` (human / JSON / SARIF output) and gate
admission in :class:`repro.sched.scheduler.DprScheduler` when
constructed with ``verify=True``.
"""

from repro.verify.bitstream import (
    BitstreamVerifyReport,
    RelocatabilityVerdict,
    verify_bitstream,
)
from repro.verify.cfg import (
    BasicBlock,
    CfgError,
    ControlFlowGraph,
    MemAccess,
    build_cfg,
    discover_cfg,
    propagate_constants,
)
from repro.verify.firmware import FirmwareVerifyReport, verify_firmware
from repro.verify.rules import (
    VerifierRule,
    all_verifier_rules,
    get_verifier_rule,
    verifier_rule_help,
    vfinding,
)

__all__ = [
    "BasicBlock",
    "BitstreamVerifyReport",
    "CfgError",
    "ControlFlowGraph",
    "FirmwareVerifyReport",
    "MemAccess",
    "RelocatabilityVerdict",
    "VerifierRule",
    "all_verifier_rules",
    "build_cfg",
    "discover_cfg",
    "get_verifier_rule",
    "propagate_constants",
    "verifier_rule_help",
    "verify_bitstream",
    "verify_firmware",
    "vfinding",
]
