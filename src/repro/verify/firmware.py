"""Static firmware verifier: MMIO/CFG analysis against the live SoC.

Reconstructs the CFG of an assembled image (:mod:`repro.verify.cfg`),
resolves statically-derivable load/store addresses by constant
propagation, and checks every resolved access against the constructed
SoC's address map and the :class:`~repro.axi.interface.RegisterBank`
write-mask metadata.  The checks target the class of driver bug that
dynamic testing only catches when the buggy path happens to execute:
stores to read-only status registers, reserved-bit writes, 64-bit
accesses to AXI4-Lite ports, and reconfiguration kicks that are not
ordered after the RP decouple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.axi.interface import RegisterBank
from repro.core.dma import MM2S_LENGTH, AxiDma
from repro.core.hwicap import CR_OFFSET as HWICAP_CR_OFFSET
from repro.core.hwicap import WF_OFFSET as HWICAP_WF_OFFSET
from repro.core.hwicap import AxiHwIcap
from repro.core.rp_control import DECOUPLE_OFFSET, RpControlInterface
from repro.firmware.runtime import STACK_OFFSET
from repro.lint.findings import Finding, Severity, sort_findings
from repro.lint.rules._shared import walk_slave_chain
from repro.riscv.assembler import Program
from repro.soc.soc import Soc
from repro.verify.cfg import (
    AbsintResult,
    ControlFlowGraph,
    MemAccess,
    discover_cfg,
)
from repro.verify.rules import vfinding


@dataclass
class FirmwareVerifyReport:
    """Outcome of statically verifying one firmware image."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    #: worst-case stack bound in bytes (None: unbounded / recursion)
    stack_bound: Optional[int] = None
    #: MMIO accesses whose addresses the analysis resolved / could not
    resolved_accesses: int = 0
    unresolved_accesses: int = 0
    blocks: int = 0
    instructions: int = 0
    unreachable_bytes: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def to_dict(self) -> dict[str, object]:
        return {
            "artifact": self.name,
            "kind": "firmware",
            "ok": self.ok,
            "stack_bound": self.stack_bound,
            "resolved_accesses": self.resolved_accesses,
            "unresolved_accesses": self.unresolved_accesses,
            "blocks": self.blocks,
            "instructions": self.instructions,
            "unreachable_bytes": self.unreachable_bytes,
            "findings": [f.to_dict() for f in sort_findings(self.findings)],
        }


@dataclass(frozen=True)
class _Target:
    """A resolved MMIO access target."""

    region_name: str
    offset: int
    terminal: object
    lite: bool


def _resolve_target(soc: Soc, address: int) -> Optional[_Target]:
    region = soc.xbar.memory_map.decode(address)
    if region is None:
        return None
    chain = walk_slave_chain(region.slave)
    terminal = chain.terminal
    lite = bool(getattr(terminal, "lite_only", False))
    return _Target(region_name=region.name, offset=address - region.base,
                   terminal=terminal, lite=lite)


def verify_firmware(program: Program, soc: Soc, *,
                    name: str = "firmware",
                    stack_budget: int = STACK_OFFSET) -> FirmwareVerifyReport:
    """Statically verify ``program`` against ``soc``'s address map."""
    image = bytes(program.text)
    base = program.base
    cfg, absint = discover_cfg(image, base, program.entry)
    report = FirmwareVerifyReport(name=name)
    report.blocks = len(cfg.blocks)
    report.instructions = sum(len(b.instrs) for b in cfg.blocks.values())

    def where(pc: int) -> str:
        return f"{name}@{pc:#x}"

    _check_accesses(soc, absint, report, where, image_base=base,
                    image_size=len(image), cfg=cfg)
    _check_decouple_dominance(soc, cfg, absint, report, where)
    _check_stack(cfg, report, where, stack_budget)
    _check_unreachable(cfg, report, name)
    report.findings = sort_findings(report.findings)
    return report


# ---------------------------------------------------------------------------
# MMIO access checks (VFY-FW-001..005, 007)
# ---------------------------------------------------------------------------
def _check_accesses(soc: Soc, absint: AbsintResult,
                    report: FirmwareVerifyReport,
                    where: Callable[[int], str], *,
                    image_base: int, image_size: int,
                    cfg: ControlFlowGraph) -> None:
    layout = soc.config.layout
    fencei_reach = _fencei_reachable_blocks(cfg)
    for access in absint.accesses:
        if access.address is None:
            report.unresolved_accesses += 1
            continue
        report.resolved_accesses += 1
        addr = access.address
        component = where(access.pc)
        verb = "store" if access.is_store else "load"

        # stores into the executable image: self-modifying code needs a
        # reachable fence.i before stale bytes can execute (VFY-FW-007)
        if (access.is_store and image_base <= addr < image_base + image_size
                and access.block not in fencei_reach):
            report.findings.append(vfinding(
                "VFY-FW-007", component,
                f"{access.name} writes {addr:#x} inside the executable "
                f"image with no fence.i reachable afterwards",
                hint="insert fence.i between the store and any execution "
                     "of the patched code"))

        if not layout.is_mmio(addr):
            continue
        target = _resolve_target(soc, addr)
        if target is None:
            report.findings.append(vfinding(
                "VFY-FW-001", component,
                f"{access.name}: address {addr:#x} decodes to no slave in "
                f"the SoC memory map",
                hint="check the firmware's .equ base constants against "
                     "MemoryLayout"))
            continue
        if addr % access.size:
            report.findings.append(vfinding(
                "VFY-FW-002", component,
                f"{access.name}: address {addr:#x} is not aligned to the "
                f"{access.size}-byte access size",
                hint="the interconnect responds SLVERR to misaligned MMIO"))
            continue
        if access.size == 8 and target.lite:
            report.findings.append(vfinding(
                "VFY-FW-005", component,
                f"{access.name}: 64-bit {verb} to AXI4-Lite-only port "
                f"{target.region_name!r} at {addr:#x}",
                hint="use lw/sw; the AXI4->Lite converter carries "
                     "32-bit beats only"))
            continue
        terminal = target.terminal
        if not isinstance(terminal, RegisterBank):
            continue  # memories (DDR, boot ROM) have no register map
        if target.offset >= terminal.size:
            report.findings.append(vfinding(
                "VFY-FW-001", component,
                f"{access.name}: offset {target.offset:#x} is beyond the "
                f"{terminal.size:#x}-byte register file of "
                f"{target.region_name!r}"))
            continue
        word_offsets = range(target.offset, target.offset + access.size, 4)
        if access.size >= 4:
            undefined = [off for off in word_offsets
                         if not terminal.has_register(off)]
            if undefined:
                report.findings.append(vfinding(
                    "VFY-FW-001", component,
                    f"{access.name}: {verb} to {target.region_name!r} "
                    f"offset {target.offset:#x} has no declared register",
                    hint="reserved offset; reads return 0, writes are "
                         "dropped by the IP",
                    severity=Severity.WARNING))
                continue
        if not access.is_store or access.size < 4:
            continue
        read_only = [off for off in word_offsets
                     if terminal.register_is_read_only(off)]
        if read_only:
            report.findings.append(vfinding(
                "VFY-FW-003", component,
                f"{access.name}: write to read-only register "
                f"{target.region_name!r}+{read_only[0]:#x}",
                hint="the IP ignores the write; the driver state machine "
                     "is relying on a side effect that never happens"))
            continue
        if access.value is not None:
            for i, off in enumerate(word_offsets):
                word = (access.value >> (32 * i)) & 0xFFFF_FFFF
                mask = terminal.register_write_mask(off)
                extra = word & ~mask & 0xFFFF_FFFF
                if extra:
                    report.findings.append(vfinding(
                        "VFY-FW-004", component,
                        f"{access.name}: value {word:#010x} sets reserved "
                        f"bits {extra:#010x} of {target.region_name!r}"
                        f"+{off:#x} (write mask {mask:#010x})",
                        hint="reserved bits must be written as zero"))


def _fencei_reachable_blocks(cfg: ControlFlowGraph) -> Set[int]:
    """Blocks from which a fence.i is reachable (backward closure)."""
    has_fencei = {start for start, block in cfg.blocks.items()
                  if any(i.decoded.name == "fence.i" for i in block.instrs)}
    preds: Dict[int, List[int]] = {start: [] for start in cfg.blocks}
    for start, block in cfg.blocks.items():
        for succ in block.successors:
            if succ in preds:
                preds[succ].append(start)
    reach = set(has_fencei)
    stack = list(has_fencei)
    while stack:
        node = stack.pop()
        for pred in preds.get(node, ()):
            if pred not in reach:
                reach.add(pred)
                stack.append(pred)
    return reach


# ---------------------------------------------------------------------------
# decouple-before-ICAP dominance (VFY-FW-006)
# ---------------------------------------------------------------------------
def _icap_path_offsets(terminal: object) -> Tuple[int, ...]:
    """Offsets whose stores launch data toward the ICAP."""
    if isinstance(terminal, AxiDma):
        return (MM2S_LENGTH,)
    if isinstance(terminal, AxiHwIcap):
        return (HWICAP_WF_OFFSET, HWICAP_CR_OFFSET)
    return ()


def _check_decouple_dominance(soc: Soc, cfg: ControlFlowGraph,
                              absint: AbsintResult,
                              report: FirmwareVerifyReport,
                              where: Callable[[int], str]) -> None:
    # classify the resolved stores once
    decouple_stores: List[MemAccess] = []   # assert (nonzero/unknown value)
    icap_stores: List[MemAccess] = []
    for access in absint.accesses:
        if not access.is_store or access.address is None:
            continue
        target = _resolve_target(soc, access.address)
        if target is None:
            continue
        if (isinstance(target.terminal, RpControlInterface)
                and target.offset == DECOUPLE_OFFSET):
            if access.value is None or access.value != 0:
                decouple_stores.append(access)
        elif target.offset in _icap_path_offsets(target.terminal):
            icap_stores.append(access)
    if not icap_stores:
        return
    decouple_by_block: Dict[int, List[int]] = {}
    for store in decouple_stores:
        decouple_by_block.setdefault(store.block, []).append(store.pc)

    for root in cfg.roots:
        if root not in cfg.blocks:
            continue
        dominators = cfg.dominators(root)
        for store in icap_stores:
            doms = dominators.get(store.block)
            if doms is None:
                continue  # not reachable from this root
            dominated = False
            for dom_block in doms:
                pcs = decouple_by_block.get(dom_block)
                if not pcs:
                    continue
                if dom_block == store.block and min(pcs) >= store.pc:
                    continue  # decouple only after the kick in-block
                dominated = True
                break
            if not dominated:
                report.findings.append(vfinding(
                    "VFY-FW-006", where(store.pc),
                    f"{store.name} launches configuration data toward the "
                    f"ICAP but no RP decouple store dominates it on the "
                    f"path from {root:#x}",
                    hint="write 1 to the RP control DECOUPLE register "
                         "before kicking the DMA/HWICAP (Listing 1 order)"))


# ---------------------------------------------------------------------------
# stack bound (VFY-FW-008) and unreachable code (VFY-FW-009)
# ---------------------------------------------------------------------------
def _check_stack(cfg: ControlFlowGraph, report: FirmwareVerifyReport,
                 where: Callable[[int], str],
                 stack_budget: int) -> None:
    bound, cycle = cfg.worst_stack_depth()
    report.stack_bound = bound
    if bound is None:
        loop = " -> ".join(f"{pc:#x}" for pc in cycle)
        report.findings.append(vfinding(
            "VFY-FW-008", where(cycle[0] if cycle else cfg.roots[0]),
            f"recursive call cycle ({loop}) makes the worst-case stack "
            f"depth unbounded",
            hint="bound the recursion or rewrite iteratively",
            severity=Severity.WARNING))
        return
    if bound > stack_budget:
        report.findings.append(vfinding(
            "VFY-FW-008", where(cfg.roots[0]),
            f"worst-case stack depth {bound} bytes exceeds the "
            f"{stack_budget}-byte reserved stack",
            hint="raise STACK_OFFSET or shrink the deepest call chain"))


def _check_unreachable(cfg: ControlFlowGraph,
                       report: FirmwareVerifyReport, name: str) -> None:
    for pc, message in cfg.decode_errors:
        report.findings.append(vfinding(
            "VFY-FW-009", f"{name}@{pc:#x}",
            f"control flow reaches undecodable bytes: {message}",
            hint="a jump or fall-through runs into data or off the image"))
    if cfg.indirect_jumps:
        # unresolved indirect jumps make the reachability under-
        # approximate; reporting holes would be noise
        return
    total = 0
    for start, end in cfg.unreachable_ranges():
        total += end - start
        report.findings.append(vfinding(
            "VFY-FW-009", f"{name}@{start:#x}",
            f"{end - start} bytes at [{start:#x}, {end:#x}) are not "
            f"reachable from the entry point or any trap vector"))
    report.unreachable_bytes = total
