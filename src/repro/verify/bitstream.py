"""Static partial-bitstream verifier: packet walk + FAR coverage proof.

Walks the type-1/type-2 configuration packet stream the way the ICAP's
state machine would (mirroring :func:`repro.fpga.bitstream.parse_bitstream`)
but *never raises*: every structural defect becomes a structured
finding, so the serving path can reject a malformed stream in-band and
CI can report all defects at once.

Beyond well-formedness the walker proves that the FAR coverage of all
FDRI writes is exactly the declared partition's frame set — the
precondition for the amorphous-DPR relocation work (ROADMAP item 2) —
and emits a :class:`RelocatabilityVerdict`: whether the stream can be
retargeted to a geometry-compatible partition by rewriting its FAR
word(s) alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import BitstreamError
from repro.fpga.bitstream import Bitstream
from repro.fpga.device import FpgaDevice
from repro.fpga.frames import FrameAddress
from repro.fpga.packets import (
    BUS_WIDTH_DETECT,
    BUS_WIDTH_SYNC,
    Command,
    ConfigPacket,
    ConfigRegister,
    DUMMY_WORD,
    NOOP_WORD,
    Opcode,
    SYNC_WORD,
)
from repro.fpga.partition import ReconfigurablePartition
from repro.lint.findings import Finding, Severity, sort_findings
from repro.utils.crc import crc32_config_word, crc32_config_words
from repro.verify.rules import vfinding


@dataclass(frozen=True)
class RelocatabilityVerdict:
    """Can the stream be FAR-rewritten into a compatible partition?"""

    relocatable: bool
    reasons: Tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {"relocatable": self.relocatable,
                "reasons": list(self.reasons)}


@dataclass
class BitstreamVerifyReport:
    """Outcome of statically verifying one partial bitstream."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    relocatability: RelocatabilityVerdict = RelocatabilityVerdict(
        relocatable=False, reasons=("stream not analyzed",))
    frames_written: int = 0
    far_writes: int = 0
    words: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def to_dict(self) -> dict[str, object]:
        return {
            "artifact": self.name,
            "kind": "bitstream",
            "ok": self.ok,
            "words": self.words,
            "frames_written": self.frames_written,
            "far_writes": self.far_writes,
            "relocatability": self.relocatability.to_dict(),
            "findings": [f.to_dict() for f in sort_findings(self.findings)],
        }


def verify_bitstream(bitstream: Bitstream,
                     rp: ReconfigurablePartition, *,
                     device: Optional[FpgaDevice] = None,
                     name: str = "bitstream") -> BitstreamVerifyReport:
    """Statically verify ``bitstream`` against its declared partition."""
    dev = device or rp.device
    report = BitstreamVerifyReport(name=name)
    words = bitstream.words
    n = int(words.size)
    report.words = n

    def emit(rule_id: str, index: int, message: str, *,
             hint: str = "", severity: Optional[Severity] = None) -> None:
        report.findings.append(vfinding(
            rule_id, f"{name}[word {index}]", message,
            hint=hint, severity=severity))

    # ------------------------------------------------------------------
    # preamble (VFY-BIT-001)
    # ------------------------------------------------------------------
    i = 0
    synced = False
    while i < n:
        word = int(words[i])
        i += 1
        if word == SYNC_WORD:
            synced = True
            break
        if word not in (DUMMY_WORD, BUS_WIDTH_SYNC, BUS_WIDTH_DETECT, 0):
            emit("VFY-BIT-001", i - 1,
                 f"unexpected preamble word {word:#010x} before sync",
                 hint="the preamble may only carry dummy words and the "
                      "bus-width sequence")
    if not synced:
        emit("VFY-BIT-001", n, "no sync word found",
             hint="the configuration logic never leaves the preamble; "
                  "the stream can have no effect")
        report.findings = sort_findings(report.findings)
        report.relocatability = RelocatabilityVerdict(
            False, ("stream never syncs",))
        return report

    # ------------------------------------------------------------------
    # packet walk
    # ------------------------------------------------------------------
    crc = 0
    crc_seen = False
    rcrc_before_frames = False
    idcode_value: Optional[int] = None
    idcode_index: Optional[int] = None
    last_command: Optional[Command] = None
    desynced_at: Optional[int] = None
    pending_type1_reg: Optional[int] = None
    current_far: Optional[int] = None
    far_writes = 0
    #: (start_linear, frame_count, block_type) per FDRI write
    coverage: List[Tuple[int, int, int]] = []
    wpf = dev.words_per_frame
    mfwr_used = False
    aborted = False

    while i < n:
        index = i
        word = int(words[i])
        i += 1
        if word == NOOP_WORD:
            continue
        if desynced_at is not None:
            if word in (DUMMY_WORD, 0):
                continue
            emit("VFY-BIT-005", index,
                 f"non-padding word {word:#010x} after DESYNC",
                 hint="the device ignores post-desync words; whatever "
                      "they were meant to do will not happen")
            continue
        try:
            header = ConfigPacket.decode(word)
        except BitstreamError:
            emit("VFY-BIT-002", index,
                 f"undecodable packet header {word:#010x}",
                 hint="the ICAP state machine desynchronizes here; "
                      "everything after this word is unpredictable")
            aborted = True
            break
        if header.packet_type == 1:
            reg = header.register
            count = header.word_count
            pending_type1_reg = reg
        else:
            if pending_type1_reg is None:
                emit("VFY-BIT-002", index,
                     "type-2 packet without a preceding type-1 header")
                aborted = True
                break
            reg = pending_type1_reg
            count = header.word_count
        if header.opcode == Opcode.READ:
            emit("VFY-BIT-002", index,
                 f"read packet (register {reg:#x}) inside a partial "
                 f"write stream",
                 hint="readback belongs to a capture flow, not a "
                      "reconfiguration stream", severity=Severity.WARNING)
            continue
        if header.opcode != Opcode.WRITE or count == 0:
            continue
        if i + count > n:
            emit("VFY-BIT-002", index,
                 f"payload of {count} words for register {reg:#x} runs "
                 f"{i + count - n} words past the end of the stream",
                 hint="word count corrupted or stream truncated")
            aborted = True
            break
        payload = words[i:i + count]
        i += count

        if reg == ConfigRegister.FDRI:
            if last_command is not Command.WCFG:
                emit("VFY-BIT-006", index,
                     "FDRI frame data written while the last CMD is "
                     f"{last_command.name if last_command else 'unset'}, "
                     f"not WCFG",
                     hint="issue CMD=WCFG before streaming frame data")
            if count % wpf:
                emit("VFY-BIT-003", index,
                     f"FDRI write of {count} words is not a whole number "
                     f"of {wpf}-word frames")
            frames = count // wpf
            if current_far is None:
                emit("VFY-BIT-003", index,
                     "FDRI write with no established frame address",
                     hint="write FAR before FDRI")
            elif frames:
                far = FrameAddress.decode(current_far)
                coverage.append((far.linear_index(), frames,
                                 far.block_type))
                try:
                    current_far = far.advance(frames).encode()
                except BitstreamError:
                    emit("VFY-BIT-003", index,
                         f"frame address {current_far:#010x} + {frames} "
                         f"frames overflows the device frame space")
                    current_far = None
            report.frames_written += frames
            crc = crc32_config_words(crc, payload, reg)
            continue

        value = int(payload[-1])
        if reg == ConfigRegister.CRC:
            crc_seen = True
            if value != crc:
                emit("VFY-BIT-005", index,
                     f"CRC check word {value:#010x} does not match the "
                     f"running CRC {crc:#010x}",
                     hint="the device would assert CRC_ERROR and abort "
                          "the configuration")
            crc = 0
            continue
        if reg == ConfigRegister.CMD:
            try:
                command = Command(value)
            except ValueError:
                emit("VFY-BIT-002", index,
                     f"unknown CMD code {value:#x}")
                continue
            last_command = command
            if command is Command.MFW:
                mfwr_used = True
            if command is Command.RCRC:
                crc = 0
                if not coverage:
                    rcrc_before_frames = True
                continue
            if command is Command.DESYNC:
                desynced_at = index
        if reg == ConfigRegister.IDCODE:
            idcode_value = value
            idcode_index = index
        if reg == ConfigRegister.FAR:
            current_far = value
            far_writes += 1
        if reg == ConfigRegister.MFWR:
            mfwr_used = True
        for item in payload.tolist():
            crc = crc32_config_word(crc, item, reg)

    report.far_writes = far_writes

    # ------------------------------------------------------------------
    # end-of-stream protocol checks (VFY-BIT-004/005)
    # ------------------------------------------------------------------
    if coverage:
        if idcode_value is None:
            emit("VFY-BIT-004", n,
                 "frame data written without an IDCODE check",
                 hint="a stream without IDCODE can configure the wrong "
                      "die", severity=Severity.WARNING)
        elif idcode_value != dev.idcode:
            emit("VFY-BIT-004", idcode_index or n,
                 f"IDCODE {idcode_value:#010x} does not match the "
                 f"{dev.name} ({dev.idcode:#010x})")
        if not rcrc_before_frames:
            emit("VFY-BIT-005", n,
                 "no RCRC before the first frame write",
                 hint="the running CRC starts from stale state",
                 severity=Severity.WARNING)
    elif not aborted:
        emit("VFY-BIT-003", n, "stream writes no configuration frames",
             hint="a partial bitstream that configures nothing cannot "
                  "load a module")
    if not crc_seen and not aborted:
        emit("VFY-BIT-005", n, "stream carries no CRC check word",
             hint="transmission errors would go undetected",
             severity=Severity.WARNING)
    if desynced_at is None and not aborted:
        emit("VFY-BIT-005", n, "stream never issues CMD=DESYNC",
             hint="the configuration port is left synchronized; "
                  "subsequent bus noise can be interpreted as packets")

    _check_coverage(report, coverage, rp, name)
    report.relocatability = _relocatability(
        coverage, far_writes, mfwr_used, aborted, rp)
    report.findings = sort_findings(report.findings)
    return report


def _check_coverage(report: BitstreamVerifyReport,
                    coverage: List[Tuple[int, int, int]],
                    rp: ReconfigurablePartition, name: str) -> None:
    """FAR coverage must be exactly the partition's frame set."""
    if not coverage:
        return
    base = rp.base_far.linear_index()
    frames = rp.frames
    block_type = rp.base_far.block_type
    written: set[int] = set()
    for start, count, btype in coverage:
        if btype != block_type:
            report.findings.append(vfinding(
                "VFY-BIT-003", name,
                f"frame write targets block type {btype}, partition "
                f"{rp.name!r} is block type {block_type}"))
            continue
        span = range(start, start + count)
        outside = [f for f in span if not base <= f < base + frames]
        if outside:
            report.findings.append(vfinding(
                "VFY-BIT-003", name,
                f"{len(outside)} of {count} frames written at linear "
                f"index {start} fall outside partition {rp.name!r} "
                f"[{base}, {base + frames})",
                hint="an out-of-partition write reconfigures static "
                     "logic — the defect the decoupler cannot protect "
                     "against"))
        written.update(f for f in span if base <= f < base + frames)
    missing = frames - len(written)
    if missing:
        report.findings.append(vfinding(
            "VFY-BIT-003", name,
            f"{missing} of {frames} frames of partition {rp.name!r} are "
            f"never written",
            hint="stale frames keep the previous module's logic",
            severity=Severity.WARNING))


def _relocatability(coverage: List[Tuple[int, int, int]], far_writes: int,
                    mfwr_used: bool, aborted: bool,
                    rp: ReconfigurablePartition) -> RelocatabilityVerdict:
    """A stream is FAR-rewritable when it is one contiguous frame run."""
    reasons: List[str] = []
    if aborted:
        reasons.append("stream is structurally malformed")
    if far_writes != 1:
        reasons.append(f"{far_writes} FAR writes (need exactly 1)")
    if mfwr_used:
        reasons.append("multi-frame-write compression pins frame "
                       "addresses")
    if not coverage:
        reasons.append("no frame data")
    else:
        expected = coverage[0][0]
        for start, count, _btype in coverage:
            if start != expected:
                reasons.append("frame writes are not contiguous")
                break
            expected = start + count
        total = sum(count for _s, count, _b in coverage)
        if total != rp.frames:
            reasons.append(
                f"covers {total} frames, partition footprint is "
                f"{rp.frames}")
    if reasons:
        return RelocatabilityVerdict(False, tuple(reasons))
    return RelocatabilityVerdict(True)
