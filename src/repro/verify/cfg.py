"""Static CFG reconstruction and constant propagation over firmware images.

The block engine (:mod:`repro.riscv.blocks`) discovers basic blocks
*speculatively* against a live hart; this module reconstructs the same
block structure purely from an assembled image so artifacts can be
checked without running them.  Discovery is recursive descent from a
set of roots (the program entry plus any trap vectors found by the
constant propagation), blocks split at the engine's terminator set, and
the result carries enough structure for dominance, reachability, call
graph and worst-case stack-depth queries.

The abstract interpreter is a flat constant lattice per register
(known 64-bit value or unknown), precise enough to resolve the
``li``/``la`` materialization sequences the assembler emits
(``lui``/``addiw``/``slli``/``srli``/``addi``) and therefore every
statically-derivable MMIO address in the shipped firmware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import IllegalInstructionError
from repro.riscv.blocks import _TERMINATORS
from repro.riscv.compressed import expand
from repro.riscv.decoder import Decoded, decode
from repro.utils.bits import sext

_M64 = 0xFFFF_FFFF_FFFF_FFFF

#: memory access sizes by mnemonic
LOAD_SIZES = {"lb": 1, "lh": 2, "lw": 4, "ld": 8,
              "lbu": 1, "lhu": 2, "lwu": 4}
STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}

#: caller-saved (clobbered across a call): ra, t0-t6, a0-a7
_CALLER_SAVED = frozenset(
    {1, 5, 6, 7, 10, 11, 12, 13, 14, 15, 16, 17, 28, 29, 30, 31}
)

#: machine trap-vector CSR
_MTVEC = 0x305


@dataclass(frozen=True)
class Instr:
    """One decoded instruction at a fixed pc."""

    pc: int
    decoded: Decoded

    @property
    def size(self) -> int:
        return self.decoded.size


@dataclass
class BasicBlock:
    """A maximal straight-line run ending at a control transfer."""

    start: int
    instrs: List[Instr] = field(default_factory=list)
    successors: Tuple[int, ...] = ()
    #: jal-with-link target (interprocedural call edge), if any
    call_target: Optional[int] = None

    @property
    def end(self) -> int:
        last = self.instrs[-1]
        return last.pc + last.size

    @property
    def terminator(self) -> Decoded:
        return self.instrs[-1].decoded


class CfgError(Exception):
    """Image bytes could not be decoded where control flow reaches."""

    def __init__(self, pc: int, message: str) -> None:
        super().__init__(f"pc {pc:#x}: {message}")
        self.pc = pc


@dataclass
class ControlFlowGraph:
    """Blocks, edges and roots reconstructed from one image."""

    base: int
    size: int
    roots: Tuple[int, ...]
    blocks: Dict[int, BasicBlock]
    #: pcs where decoding failed during discovery (flowed into data)
    decode_errors: List[Tuple[int, str]] = field(default_factory=list)
    #: pcs of indirect jumps whose targets the analysis cannot resolve
    indirect_jumps: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # reachability / coverage
    # ------------------------------------------------------------------
    def reachable_ranges(self) -> List[Tuple[int, int]]:
        """Sorted, merged [start, end) byte ranges covered by blocks."""
        ranges = sorted((b.start, b.end) for b in self.blocks.values())
        merged: List[Tuple[int, int]] = []
        for start, end in ranges:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def unreachable_ranges(self) -> List[Tuple[int, int]]:
        """[start, end) image ranges no reachable block covers."""
        holes: List[Tuple[int, int]] = []
        cursor = self.base
        for start, end in self.reachable_ranges():
            if start > cursor:
                holes.append((cursor, start))
            cursor = max(cursor, end)
        if cursor < self.base + self.size:
            holes.append((cursor, self.base + self.size))
        return holes

    # ------------------------------------------------------------------
    # dominance
    # ------------------------------------------------------------------
    def dominators(self, root: int) -> Dict[int, FrozenSet[int]]:
        """Block-level dominator sets over the subgraph reached from
        ``root`` (standard iterative data-flow)."""
        reachable = self._reachable_blocks(root)
        order = sorted(reachable)
        all_blocks = frozenset(order)
        dom: Dict[int, FrozenSet[int]] = {
            start: frozenset({root}) if start == root else all_blocks
            for start in order
        }
        preds: Dict[int, List[int]] = {start: [] for start in order}
        for start in order:
            for succ in self.blocks[start].successors:
                if succ in preds:
                    preds[succ].append(start)
        changed = True
        while changed:
            changed = False
            for start in order:
                if start == root:
                    continue
                pred_doms = [dom[p] for p in preds[start]]
                if pred_doms:
                    new = frozenset.intersection(*pred_doms) | {start}
                else:
                    new = frozenset({start})
                if new != dom[start]:
                    dom[start] = new
                    changed = True
        return dom

    def _reachable_blocks(self, root: int) -> Set[int]:
        seen: Set[int] = set()
        stack = [root]
        while stack:
            start = stack.pop()
            if start in seen or start not in self.blocks:
                continue
            seen.add(start)
            stack.extend(self.blocks[start].successors)
        return seen

    # ------------------------------------------------------------------
    # call graph / stack depth
    # ------------------------------------------------------------------
    def call_graph(self) -> Dict[int, Set[int]]:
        """``function entry -> called function entries``.

        Functions are the roots plus every jal-with-link target; a
        block belongs to the nearest function entry that reaches it
        without crossing a call edge.
        """
        entries = set(self.roots)
        for block in self.blocks.values():
            if block.call_target is not None:
                entries.add(block.call_target)
        graph: Dict[int, Set[int]] = {}
        for entry in entries:
            calls: Set[int] = set()
            for start in self._function_blocks(entry, entries):
                target = self.blocks[start].call_target
                if target is not None:
                    calls.add(target)
            graph[entry] = calls
        return graph

    def _function_blocks(self, entry: int, entries: Set[int]) -> Set[int]:
        """Blocks of the function at ``entry`` (no call-edge crossing)."""
        seen: Set[int] = set()
        stack = [entry]
        while stack:
            start = stack.pop()
            if start in seen or start not in self.blocks:
                continue
            seen.add(start)
            block = self.blocks[start]
            for succ in block.successors:
                # a call successor that is another function's entry is
                # the callee body, not part of this function
                if succ == block.call_target and succ != entry:
                    continue
                stack.append(succ)
        return seen

    def frame_size(self, entry: int, entries: Set[int]) -> int:
        """Largest stack frame the function at ``entry`` allocates."""
        frame = 0
        for start in self._function_blocks(entry, entries):
            for instr in self.blocks[start].instrs:
                d = instr.decoded
                if d.name == "addi" and d.rd == 2 and d.rs1 == 2 and d.imm < 0:
                    frame = max(frame, -d.imm)
        return frame

    def worst_stack_depth(self) -> Tuple[Optional[int], List[int]]:
        """Worst-case stack bound over the call graph.

        Returns ``(bound_bytes, recursion_cycle)``; the bound is None
        when recursion makes it unbounded, and the cycle lists the
        entries involved.
        """
        graph = self.call_graph()
        entries = set(graph)
        frames = {entry: self.frame_size(entry, entries) for entry in graph}
        memo: Dict[int, int] = {}
        on_path: List[int] = []
        cycle: List[int] = []

        def depth(entry: int) -> int:
            if entry in memo:
                return memo[entry]
            if entry in on_path:
                if not cycle:
                    cycle.extend(on_path[on_path.index(entry):])
                return 0
            on_path.append(entry)
            worst_callee = 0
            for callee in graph.get(entry, ()):
                worst_callee = max(worst_callee, depth(callee))
            on_path.pop()
            memo[entry] = frames.get(entry, 0) + worst_callee
            return memo[entry]

        bound = 0
        for root in self.roots:
            bound = max(bound, depth(root))
        if cycle:
            return None, cycle
        return bound, []


# ---------------------------------------------------------------------------
# discovery
# ---------------------------------------------------------------------------
def _decode_at(image: bytes, base: int, pc: int) -> Instr:
    offset = pc - base
    if offset < 0 or offset + 2 > len(image):
        raise CfgError(pc, "control flow leaves the image")
    low = int.from_bytes(image[offset:offset + 2], "little")
    try:
        if low & 3 == 3:
            if offset + 4 > len(image):
                raise CfgError(pc, "truncated 32-bit instruction")
            word = int.from_bytes(image[offset:offset + 4], "little")
            return Instr(pc, decode(word, pc))
        return Instr(pc, expand(low, pc))
    except IllegalInstructionError as exc:
        raise CfgError(pc, f"undecodable instruction ({exc})") from None


def _block_end(d: Decoded) -> bool:
    return d.name in _TERMINATORS or d.name in ("ebreak", "mret", "ecall")


def _successors(instr: Instr) -> Tuple[Tuple[int, ...], Optional[int]]:
    """(intra-CFG successors, call target) of a terminating instruction."""
    d = instr.decoded
    fall = instr.pc + d.size
    if d.name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        return (instr.pc + d.imm, fall), None
    if d.name == "jal":
        target = instr.pc + d.imm
        if d.rd == 0:
            return (target,), None
        # call: model return as the fall-through edge, keep the callee
        # entry as a successor so dominance sees the callee body
        return (target, fall), target
    if d.name == "jalr":
        # rd=zero rs1=ra is the `ret` idiom: edges flow back through
        # the caller's fall-through, nothing to add here
        return (), None
    if d.name in ("ebreak", "mret"):
        return (), None
    if d.name == "ecall":
        return (fall,), None
    return (fall,), None


def build_cfg(image: bytes, base: int,
              roots: Iterable[int]) -> ControlFlowGraph:
    """Reconstruct the CFG of ``image`` from the given root pcs."""
    root_list = tuple(dict.fromkeys(roots))
    cfg = ControlFlowGraph(base=base, size=len(image), roots=root_list,
                           blocks={})
    # first pass: find every block start (roots + edge targets), then
    # split blocks at any start that lands mid-block
    starts: Set[int] = set()
    worklist = list(root_list)
    edges: Dict[int, Tuple[Tuple[int, ...], Optional[int]]] = {}
    while worklist:
        start = worklist.pop()
        if start in starts:
            continue
        starts.add(start)
        pc = start
        while True:
            try:
                instr = _decode_at(image, base, pc)
            except CfgError as exc:
                cfg.decode_errors.append((exc.pc, str(exc)))
                edges[start] = ((), None)
                break
            d = instr.decoded
            if _block_end(d):
                succs, call = _successors(instr)
                if d.name == "jalr" and not (d.rd == 0 and d.rs1 == 1):
                    cfg.indirect_jumps.append(pc)
                edges[start] = (succs, call)
                worklist.extend(succs)
                break
            pc += d.size

    # second pass: materialize blocks, splitting where an edge target
    # lands inside an already-walked run
    for start in sorted(starts):
        block = BasicBlock(start=start)
        pc = start
        while True:
            try:
                instr = _decode_at(image, base, pc)
            except CfgError:
                break
            block.instrs.append(instr)
            d = instr.decoded
            next_pc = pc + d.size
            if _block_end(d):
                succs, call = _successors(instr)
                block.successors = succs
                block.call_target = call
                break
            if next_pc in starts:
                block.successors = (next_pc,)
                break
            pc = next_pc
        if block.instrs:
            cfg.blocks[start] = block
    return cfg


# ---------------------------------------------------------------------------
# constant propagation
# ---------------------------------------------------------------------------
#: register state: index -> known unsigned 64-bit value; absent = unknown
RegState = Dict[int, int]


@dataclass(frozen=True)
class MemAccess:
    """A load/store with whatever the analysis could resolve."""

    pc: int
    block: int
    name: str
    size: int
    is_store: bool
    address: Optional[int]
    value: Optional[int]  # stored value, when statically known


@dataclass
class AbsintResult:
    """Fixpoint result of the constant propagation."""

    accesses: List[MemAccess]
    #: statically-known values written to mtvec (trap vector roots)
    mtvec_values: List[int]
    #: block entry states at the fixpoint
    in_states: Dict[int, RegState]


def _apply(d: Decoded, pc: int, state: RegState) -> None:
    """Transfer function of one instruction over the constant lattice."""
    name = d.name
    rd = d.rd

    def get(reg: int) -> Optional[int]:
        if reg == 0:
            return 0
        return state.get(reg)

    def put(value: Optional[int]) -> None:
        if rd == 0:
            return
        if value is None:
            state.pop(rd, None)
        else:
            state[rd] = value & _M64

    if name == "lui":
        put(d.imm & _M64)
        return
    if name == "auipc":
        put((pc + d.imm) & _M64)
        return
    a = get(d.rs1)
    if name in ("addi", "addiw", "slli", "srli", "srai", "andi", "ori",
                "xori", "slti", "sltiu", "slliw", "srliw", "sraiw"):
        if a is None:
            put(None)
            return
        if name == "addi":
            put(a + d.imm)  # imm is sign-extended by the decoder
        elif name == "addiw":
            put(sext((a + d.imm) & 0xFFFF_FFFF, 32) & _M64)
        elif name == "slli":
            put(a << d.imm)
        elif name == "srli":
            put(a >> d.imm)
        elif name == "srai":
            put(sext(a, 64) >> d.imm)
        elif name == "andi":
            put(a & (d.imm & _M64))  # imm sign-extended by the decoder
        elif name == "ori":
            put(a | (d.imm & _M64))
        elif name == "xori":
            put(a ^ (d.imm & _M64))
        elif name == "slti":
            put(int(sext(a, 64) < d.imm))
        elif name == "sltiu":
            put(int(a < (d.imm & _M64)))
        elif name == "slliw":
            put(sext((a << d.imm) & 0xFFFF_FFFF, 32) & _M64)
        elif name == "srliw":
            put(sext(((a & 0xFFFF_FFFF) >> d.imm) & 0xFFFF_FFFF, 32) & _M64)
        elif name == "sraiw":
            put(sext(sext(a & 0xFFFF_FFFF, 32) >> d.imm, 32) & _M64)
        return
    if name in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
                "slt", "sltu", "addw", "subw", "mul"):
        b = get(d.rs2)
        if a is None or b is None:
            put(None)
            return
        if name == "add":
            put(a + b)
        elif name == "sub":
            put(a - b)
        elif name == "and":
            put(a & b)
        elif name == "or":
            put(a | b)
        elif name == "xor":
            put(a ^ b)
        elif name == "sll":
            put(a << (b & 63))
        elif name == "srl":
            put(a >> (b & 63))
        elif name == "sra":
            put(sext(a, 64) >> (b & 63))
        elif name == "slt":
            put(int(sext(a, 64) < sext(b, 64)))
        elif name == "sltu":
            put(int(a < b))
        elif name == "addw":
            put(sext((a + b) & 0xFFFF_FFFF, 32) & _M64)
        elif name == "subw":
            put(sext((a - b) & 0xFFFF_FFFF, 32) & _M64)
        elif name == "mul":
            put(a * b)
        return
    if name == "jal":
        put((pc + d.size) & _M64)  # link register
        return
    if name == "jalr":
        put((pc + d.size) & _M64)
        return
    if rd != 0 and (name in LOAD_SIZES or name.startswith(("csrr", "amo",
                                                           "lr.", "sc."))
                    or name in ("div", "divu", "rem", "remu", "divw",
                                "divuw", "remw", "remuw", "mulh", "mulhsu",
                                "mulhu", "mulw")):
        put(None)
        return


def _merge(into: RegState, other: RegState) -> bool:
    """Meet ``other`` into ``into``; True when ``into`` changed."""
    changed = False
    for reg in list(into):
        if other.get(reg) != into[reg]:
            del into[reg]
            changed = True
    return changed


def propagate_constants(cfg: ControlFlowGraph) -> AbsintResult:
    """Flow-sensitive constant propagation to a fixpoint.

    Call fall-through edges kill caller-saved registers (the callee may
    clobber them); callee entries receive the caller's state so
    argument constants flow in.
    """
    in_states: Dict[int, RegState] = {}
    seeded: Set[int] = set()
    worklist: List[int] = []
    for root in cfg.roots:
        if root in cfg.blocks:
            in_states[root] = {}
            seeded.add(root)
            worklist.append(root)

    def flow(start: int, state: RegState) -> None:
        if start not in cfg.blocks:
            return
        if start not in seeded:
            in_states[start] = dict(state)
            seeded.add(start)
            worklist.append(start)
        elif _merge(in_states[start], state):
            worklist.append(start)

    while worklist:
        start = worklist.pop()
        block = cfg.blocks[start]
        state = dict(in_states[start])
        for instr in block.instrs:
            _apply(instr.decoded, instr.pc, state)
        call = block.call_target
        for succ in block.successors:
            if call is not None and succ != call:
                # fall-through past a call: the callee clobbers the
                # caller-saved half of the file
                out = {reg: val for reg, val in state.items()
                       if reg not in _CALLER_SAVED}
                flow(succ, out)
            else:
                flow(succ, state)

    # collection pass with the fixpoint states
    accesses: List[MemAccess] = []
    mtvec_values: List[int] = []
    for start in sorted(in_states):
        block = cfg.blocks[start]
        state = dict(in_states[start])
        for instr in block.instrs:
            d = instr.decoded
            if d.name in LOAD_SIZES or d.name in STORE_SIZES:
                is_store = d.name in STORE_SIZES
                base_val = 0 if d.rs1 == 0 else state.get(d.rs1)
                address = (None if base_val is None
                           else (base_val + d.imm) & _M64)
                value: Optional[int] = None
                if is_store:
                    value = 0 if d.rs2 == 0 else state.get(d.rs2)
                accesses.append(MemAccess(
                    pc=instr.pc, block=start, name=d.name,
                    size=(STORE_SIZES[d.name] if is_store
                          else LOAD_SIZES[d.name]),
                    is_store=is_store, address=address, value=value))
            elif d.name == "csrrw" and d.csr == _MTVEC:
                written = 0 if d.rs1 == 0 else state.get(d.rs1)
                if written is not None:
                    mtvec_values.append(written & ~3 & _M64)
            _apply(d, instr.pc, state)
    return AbsintResult(accesses=accesses, mtvec_values=mtvec_values,
                        in_states=in_states)


def discover_cfg(image: bytes, base: int, entry: int,
                 extra_roots: Iterable[int] = ()) -> Tuple[ControlFlowGraph,
                                                           AbsintResult]:
    """Build the CFG, folding in trap vectors found by the analysis.

    Runs discovery + constant propagation to a combined fixpoint: a
    ``csrw mtvec`` with a statically-known value adds a root, which can
    expose more code (and further mtvec writes).
    """
    roots: List[int] = [entry, *extra_roots]
    for _ in range(8):  # trap-vector discovery rarely needs >1 round
        cfg = build_cfg(image, base, roots)
        result = propagate_constants(cfg)
        new_roots = [pc for pc in result.mtvec_values
                     if base <= pc < base + len(image) and pc not in roots]
        if not new_roots:
            return cfg, result
        roots.extend(new_roots)
    return cfg, result
