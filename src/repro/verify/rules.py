"""Verifier rule catalog and finding construction.

The artifact verifiers (:mod:`repro.verify.firmware`,
:mod:`repro.verify.bitstream`) reuse the DRC's structured
:class:`~repro.lint.findings.Finding` records but run a single
analysis walk per artifact rather than independent per-rule callables,
so the registry here is *declarative*: rule ids, titles, default
severities and descriptions.  It feeds ``repro verify --list-rules``,
the SARIF rule table and the per-rule fixture tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import DrcError
from repro.lint.findings import Finding, Severity


@dataclass(frozen=True)
class VerifierRule:
    """One verifier rule: identity, documentation, default severity."""

    rule_id: str
    title: str
    severity: Severity
    description: str = ""


_REGISTRY: Dict[str, VerifierRule] = {}


def _register(rule_id: str, title: str, severity: Severity,
              description: str) -> None:
    if rule_id in _REGISTRY:
        raise DrcError(f"duplicate verifier rule id {rule_id!r}")
    _REGISTRY[rule_id] = VerifierRule(rule_id, title, severity, description)


# ---------------------------------------------------------------------------
# firmware rules (static CFG / MMIO analysis)
# ---------------------------------------------------------------------------
_register(
    "VFY-FW-001", "MMIO access outside the SoC address map", Severity.ERROR,
    "A statically-resolved load/store address decodes to no slave in the "
    "SoC memory map, falls beyond the target slave's register file, or "
    "(downgraded to a warning) hits a mapped register bank at an offset "
    "with no declared register.")
_register(
    "VFY-FW-002", "Misaligned MMIO access", Severity.ERROR,
    "A statically-resolved MMIO access address is not aligned to the "
    "access size; the interconnect responds SLVERR at runtime.")
_register(
    "VFY-FW-003", "Write to a read-only register", Severity.ERROR,
    "A store targets a register declared read_only (status registers, "
    "version words); the IP ignores the write, so the firmware's state "
    "machine is likely wrong.")
_register(
    "VFY-FW-004", "Write sets reserved register bits", Severity.WARNING,
    "A store with a statically-known value sets bits outside the "
    "register's declared write mask; reserved bits must be written as "
    "zero (UG585-style contract).")
_register(
    "VFY-FW-005", "AXI4-Lite port accessed wider than 32 bits", Severity.ERROR,
    "A 64-bit load/store targets a register bank declared lite_only; "
    "the AXI4->Lite protocol converter only carries 32-bit beats.")
_register(
    "VFY-FW-006", "ICAP-path write not dominated by RP decouple", Severity.ERROR,
    "A store that launches configuration data toward the ICAP (DMA "
    "MM2S_LENGTH kick or HWICAP WF/CR) is reachable without first "
    "passing a store asserting the RP decouple bit — the fabric could "
    "glitch mid-reconfiguration (Listing 1 orders decouple first).")
_register(
    "VFY-FW-007", "Store to executable memory without reachable fence.i",
    Severity.WARNING,
    "A store writes into the executable image's address range but no "
    "fence.i is reachable from the storing block, so stale instructions "
    "may execute from the pre-store bytes.")
_register(
    "VFY-FW-008", "Worst-case stack depth exceeds the reserved stack",
    Severity.ERROR,
    "The call-graph worst-case stack bound exceeds the stack budget, or "
    "recursion makes the bound unbounded (downgraded to a warning).")
_register(
    "VFY-FW-009", "Unreachable code in the firmware image", Severity.WARNING,
    "Image bytes are not reachable from the entry point or any "
    "discovered trap vector; dead code wastes boot ROM and usually "
    "signals a wiring mistake in the build.")

# ---------------------------------------------------------------------------
# bitstream rules (static packet-stream analysis)
# ---------------------------------------------------------------------------
_register(
    "VFY-BIT-001", "Malformed bitstream framing", Severity.ERROR,
    "The preamble contains non-dummy/non-bus-width words, the sync word "
    "is missing, or non-padding words follow DESYNC.")
_register(
    "VFY-BIT-002", "Malformed configuration packet", Severity.ERROR,
    "A packet header fails to decode, a type-2 packet has no preceding "
    "type-1, a payload's word count runs past the end of the stream, or "
    "a CMD write carries an unknown command code.")
_register(
    "VFY-BIT-003", "FAR coverage does not match the declared partition",
    Severity.ERROR,
    "Frame writes configure frames outside the declared partition "
    "(error), leave declared frames unconfigured (warning), write a "
    "non-whole number of frames, or the stream writes FDRI without an "
    "established frame address.")
_register(
    "VFY-BIT-004", "IDCODE missing or does not match the device",
    Severity.ERROR,
    "The stream writes configuration frames with a wrong IDCODE (error) "
    "or without any IDCODE check at all (warning); a mismatched stream "
    "would be rejected or, worse, loaded onto the wrong die.")
_register(
    "VFY-BIT-005", "CRC / desync protocol violation", Severity.ERROR,
    "The CRC check word does not match the running CRC, configuration "
    "writes continue after DESYNC, the stream never desyncs, or "
    "(warnings) it lacks an RCRC before frame data or any CRC check.")
_register(
    "VFY-BIT-006", "Frame data written without WCFG", Severity.ERROR,
    "An FDRI write occurs while the last CMD is not WCFG; the "
    "configuration logic would not commit the frames.")


def all_verifier_rules() -> List[VerifierRule]:
    """Every verifier rule, sorted by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_verifier_rule(rule_id: str) -> VerifierRule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise DrcError(f"unknown verifier rule {rule_id!r}") from None


def verifier_rule_help() -> Dict[str, str]:
    """``rule_id -> title`` map for the SARIF rule table."""
    return {r.rule_id: r.title for r in all_verifier_rules()}


def vfinding(rule_id: str, component: str, message: str, *,
             hint: str = "",
             severity: Optional[Severity] = None) -> Finding:
    """Build a :class:`Finding` for a registered verifier rule."""
    registered = _REGISTRY[rule_id]
    return Finding(
        rule_id=rule_id,
        severity=registered.severity if severity is None else severity,
        component=component,
        message=message,
        hint=hint,
    )
