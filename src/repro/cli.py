"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``   — regenerate Tables I-IV from live simulation runs
* ``fig3``     — the reconfiguration-time-vs-RP-size sweep (Fig. 3)
* ``unroll``   — the HWICAP loop-unrolling firmware study (Sec. IV-B)
* ``reconfig`` — one reconfiguration with a trace timeline and stats
  (``--trace-chrome``/``--trace-vcd``/``--metrics``/``--breakdown``
  export span traces, signal dumps and metric snapshots)
* ``trace``    — one traced reconfiguration; Perfetto/VCD/metrics
  exports plus the Tr latency-breakdown report
* ``faults``   — fault-injection sweep: detection and recovery rates
* ``lint``     — static analysis: SoC design-rule checks + AST lints
  (``--format json|sarif`` for CI artifacts, ``--list-rules`` for the
  catalog; exit 0 clean / 1 findings / 2 internal error)
* ``verify``   — static artifact verification: firmware MMIO/CFG
  analysis and partial-bitstream packet/FAR-coverage checks over the
  reference artifacts (or ``--firmware``/``--bitstream`` files); same
  format flags and exit-code contract as ``lint``
* ``sched-bench`` — replay a synthetic multi-tenant swap-request stream
  through the asyncio DPR scheduler; throughput/latency/miss report
* ``serve``    — replay a recorded JSON request trace through the
  scheduler (the interchange format ``sched-bench --emit-trace`` writes)
* ``power``    — cycle-integrated energy accounting: ``report`` renders
  the per-phase/per-component breakdown of one reconfiguration,
  ``sweep`` replays a workload under several peak-power caps
  (``--power-chrome``/``--power-vcd`` on ``reconfig``/``sched-bench``/
  ``serve`` export power-annotated traces)
* ``asm``      — assemble an RV64 source file (optionally RVC-compressed)
* ``disasm``   — disassemble a flat binary image
* ``profile``  — cProfile a named simulator workload (pstats output)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.eval.tables import table1, table2, table3, table4
    which = set(args.which or ["1", "2", "3", "4"])
    if "1" in which:
        print("Table I: controller resources and throughput")
        print(table1(hwicap_mode=args.hwicap_mode).render(), end="\n\n")
    if "2" in which:
        print("Table II: state-of-the-art comparison")
        print(table2().render(), end="\n\n")
    if "3" in which:
        print("Table III: full-SoC utilization")
        print(table3().render(), end="\n\n")
    if "4" in which:
        print("Table IV: adaptive image-processing case study")
        print(table4().render(), end="\n\n")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.eval.figures import fig3_series
    series = fig3_series(controller=args.controller)
    print(series.render())
    return 0


def _cmd_unroll(args: argparse.Namespace) -> int:
    from repro.eval.figures import unroll_sweep
    sweep = unroll_sweep(tuple(args.factors))
    print(sweep.render())
    return 0


def _export_observability(soc, obs, args: argparse.Namespace) -> None:
    """Write whichever trace/metric artifacts the flags requested."""
    soc.capture_stats_metrics()
    if getattr(args, "trace_chrome", None):
        Path(args.trace_chrome).write_text(obs.chrome_trace(soc.sim.freq_hz))
        print(f"chrome trace written to {args.trace_chrome}")
    if getattr(args, "trace_vcd", None):
        Path(args.trace_vcd).write_text(obs.vcd(soc.sim.freq_hz))
        print(f"vcd dump written to {args.trace_vcd}")
    if getattr(args, "metrics", None):
        Path(args.metrics).write_text(obs.prometheus())
        print(f"prometheus metrics written to {args.metrics}")
    if getattr(args, "metrics_json", None):
        Path(args.metrics_json).write_text(obs.json_metrics())
        print(f"json metrics written to {args.metrics_json}")
    _export_power(soc, obs, args)


def _export_power(soc, obs, args: argparse.Namespace) -> None:
    """Power-annotated exports: energy per span + a power_mw track.

    Runs after the plain exports so ``--trace-chrome`` stays
    byte-identical with or without the power flags.
    """
    power_chrome = getattr(args, "power_chrome", None)
    power_vcd = getattr(args, "power_vcd", None)
    if not (power_chrome or power_vcd):
        return
    from repro.power import DEFAULT_PROFILE, PowerModel
    model = PowerModel(DEFAULT_PROFILE)
    annotated = model.annotate(obs.tracer, freq_hz=soc.sim.freq_hz)
    model.inject_power_track(obs.tracer, freq_hz=soc.sim.freq_hz)
    if power_chrome:
        Path(power_chrome).write_text(obs.chrome_trace(soc.sim.freq_hz))
        print(f"power chrome trace written to {power_chrome} "
              f"({annotated} spans carry energy_nj)")
    if power_vcd:
        Path(power_vcd).write_text(obs.vcd(soc.sim.freq_hz))
        print(f"power vcd dump written to {power_vcd}")


def _print_breakdown(soc, obs, result) -> None:
    from repro.obs import build_tr_breakdown, render_tr_breakdown
    try:
        breakdown = build_tr_breakdown(obs.tracer, soc.sim.freq_hz,
                                       tr_reported_us=result.tr_us)
    except ValueError as exc:
        print(f"breakdown unavailable: {exc}", file=sys.stderr)
        return
    print()
    print(render_tr_breakdown(breakdown))


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace-chrome", metavar="FILE", default=None,
                   help="write a Perfetto-loadable Chrome trace JSON")
    p.add_argument("--trace-vcd", metavar="FILE", default=None,
                   help="write a VCD signal dump")
    p.add_argument("--metrics", metavar="FILE", default=None,
                   help="write Prometheus text-format metrics")
    p.add_argument("--metrics-json", metavar="FILE", default=None,
                   help="write a JSON metrics snapshot")
    p.add_argument("--breakdown", action="store_true",
                   help="print the Tr latency-breakdown report")
    p.add_argument("--power-chrome", metavar="FILE", default=None,
                   help="write a Chrome trace with a power_mw counter "
                        "track and per-span energy_nj attributes")
    p.add_argument("--power-vcd", metavar="FILE", default=None,
                   help="write a VCD dump including the power_mw signal")


def _cmd_reconfig(args: argparse.Namespace) -> int:
    from repro.drivers.manager import ReconfigurationManager
    from repro.soc.builder import build_soc
    from repro.sim.tracing import format_stats

    soc = build_soc()
    recorder = soc.attach_trace()
    wants_obs = any((args.trace_chrome, args.trace_vcd, args.metrics,
                     args.metrics_json, args.breakdown,
                     args.power_chrome, args.power_vcd))
    obs = soc.attach_observability() if wants_obs else None
    manager = ReconfigurationManager(soc, controller=args.controller)
    manager.provision_sdcard()
    manager.init_rmodules()
    result = manager.load_module(args.module)
    print(f"module {result.module}: Td={result.td_us:.1f} us, "
          f"Tr={result.tr_us:.1f} us, "
          f"{result.throughput_mb_s:.1f} MB/s\n")
    print("timeline:")
    print(recorder.format_timeline(soc.sim.freq_hz))
    print("\nstats:")
    print(format_stats(soc.stats()))
    if obs is not None:
        _export_observability(soc, obs, args)
        if args.breakdown:
            _print_breakdown(soc, obs, result)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """One traced DPR: exports are the point, the console stays terse."""
    from repro.drivers.manager import ReconfigurationManager
    from repro.soc.builder import build_soc

    soc = build_soc()
    obs = soc.attach_observability()
    manager = ReconfigurationManager(soc, controller="rvcap")
    manager.provision_sdcard()
    manager.init_rmodules()
    result = manager.load_module(args.module)
    print(f"module {result.module}: Td={result.td_us:.1f} us, "
          f"Tr={result.tr_us:.1f} us, "
          f"{result.throughput_mb_s:.1f} MB/s")
    # `trace` spells the flags --chrome/--vcd; reuse the shared exporter
    # by aliasing them onto the reconfig-style attribute names
    args.trace_chrome = args.chrome
    args.trace_vcd = args.vcd
    _export_observability(soc, obs, args)
    if not args.no_breakdown:
        _print_breakdown(soc, obs, result)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.eval.fault_sweep import fault_sweep
    if args.points < 1:
        print("faults: --points must be >= 1", file=sys.stderr)
        return 2
    report = fault_sweep(points=args.points, seed=args.seed,
                         kinds=args.kinds or None, mode=args.mode,
                         module=args.module)
    print(report.render())
    if report.recovery_rate < args.min_recovery:
        print(f"recovery rate below the {100 * args.min_recovery:.0f}% "
              "threshold")
        return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.eval.validation import render_validation, run_validation
    checks = run_validation()
    print(render_validation(checks))
    return 0 if all(c.ok for c in checks) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import generate_report
    report = generate_report(include_unroll=not args.no_unroll,
                             hwicap_mode=args.hwicap_mode)
    text = report.render()
    if args.output:
        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


#: reporter exit-code contract shared by ``lint`` and ``verify``:
#: 0 clean, 1 findings reported, 2 the tool itself failed
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2


def _report_format(args: argparse.Namespace) -> str:
    """Resolve ``--format`` (with the legacy ``--json`` alias)."""
    if args.format:
        return str(args.format)
    return "json" if getattr(args, "json", False) else "human"


def _emit_findings(findings, args: argparse.Namespace, *,
                   tool: str, rule_help=None, label: str = "report") -> int:
    """Render findings in the chosen format; return the exit code."""
    from repro.lint import findings_to_json, findings_to_sarif, render_findings

    fmt = _report_format(args)
    if fmt == "json":
        text = findings_to_json(findings)
    elif fmt == "sarif":
        text = findings_to_sarif(findings, tool=tool, rule_help=rule_help)
    else:
        text = render_findings(findings) + "\n"
    if args.output:
        Path(args.output).write_text(text)
        print(f"{label} written to {args.output}")
    else:
        print(text, end="")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: SoC DRC + AST lints; human/JSON/SARIF output."""
    from repro.lint import all_rules, run_drc
    from repro.lint.astchecks import run_astchecks
    from repro.lint.findings import dedupe_findings
    from repro.lint.findings import suppress as apply_suppressions

    if args.list_rules:
        for drc_rule in all_rules():
            print(f"{drc_rule.rule_id}  [{drc_rule.severity}]  "
                  f"{drc_rule.title}")
        return EXIT_CLEAN

    try:
        run_both = not (args.drc or args.ast)
        findings = []
        rule_help = {r.rule_id: r.title for r in all_rules()}
        if args.drc or run_both:
            from repro.soc.builder import build_soc
            report = run_drc(build_soc(), rules=args.rules or None,
                             suppressions=args.suppress)
            findings.extend(report.findings)
        if args.ast or run_both:
            findings.extend(
                apply_suppressions(run_astchecks(), args.suppress))
        findings = dedupe_findings(findings)
        return _emit_findings(findings, args, tool="repro-lint",
                              rule_help=rule_help, label="lint report")
    except Exception as exc:  # noqa: BLE001 - reporter contract: 2 on crash
        print(f"lint: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL_ERROR


def _cmd_verify(args: argparse.Namespace) -> int:
    """Static artifact verification: firmware images + partial bitstreams."""
    from repro.verify import all_verifier_rules

    if args.list_rules:
        for rule in all_verifier_rules():
            print(f"{rule.rule_id}  [{rule.severity}]  {rule.title}")
        return EXIT_CLEAN

    try:
        reports = _collect_verify_reports(args)
    except Exception as exc:  # noqa: BLE001 - reporter contract: 2 on crash
        print(f"verify: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL_ERROR

    from repro.lint import Severity, findings_to_sarif, render_findings
    from repro.verify import verifier_rule_help

    findings = [f for report in reports for f in report.findings]
    fmt = _report_format(args)
    if fmt == "json":
        document = {
            "tool": "repro-verify",
            "artifacts": [report.to_dict() for report in reports],
            "count": len(findings),
            "errors": sum(1 for f in findings
                          if f.severity is Severity.ERROR),
            "ok": all(report.ok for report in reports),
        }
        text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    elif fmt == "sarif":
        text = findings_to_sarif(findings, tool="repro-verify",
                                 rule_help=verifier_rule_help())
    else:
        lines = []
        for report in reports:
            status = "ok" if report.ok else "FAIL"
            extra = ""
            reloc = getattr(report, "relocatability", None)
            if reloc is not None:
                extra = (", relocatable" if reloc.relocatable
                         else ", not relocatable")
            bound = getattr(report, "stack_bound", None)
            if bound is not None:
                extra = f", stack bound {bound} B"
            lines.append(f"{report.name}: {status} "
                         f"({len(report.findings)} findings{extra})")
        body = render_findings(findings)
        text = "\n".join(lines) + "\n\n" + body + "\n"
    if args.output:
        Path(args.output).write_text(text)
        print(f"verify report written to {args.output}")
    else:
        print(text, end="")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _collect_verify_reports(args: argparse.Namespace) -> list:
    """Run the requested verifications and return the report objects."""
    from repro.soc.builder import build_soc
    from repro.verify import verify_bitstream, verify_firmware

    soc = build_soc()
    reports: list = []

    if args.firmware or args.bitstream:
        if args.firmware:
            from repro.riscv.assembler import Program
            data = Path(args.firmware).read_bytes()
            base = int(args.base, 0)
            program = Program(base=base, text=data)
            if args.entry:
                program.symbols["_start"] = int(args.entry, 0)
            reports.append(verify_firmware(
                program, soc, name=Path(args.firmware).name))
        if args.bitstream:
            from repro.fpga.bitstream import Bitstream
            rp = soc.partitions[args.partition]
            stream = Bitstream.from_bytes(Path(args.bitstream).read_bytes())
            reports.append(verify_bitstream(
                stream, rp, name=Path(args.bitstream).name))
        return reports

    # default: verify every artifact the reference platform ships —
    # both firmware flavours and one generated PB per registered module
    rp0 = soc.partitions[0]
    module0 = soc.module(soc.registered_modules[0])
    pbit_bytes = soc.bitgen.generate(rp0, module0).nbytes
    src_address = soc.config.layout.ddr_base

    from repro.firmware.hwicap_fw import build_hwicap_firmware
    from repro.firmware.rvcap_fw import build_rvcap_firmware
    reports.append(verify_firmware(
        build_rvcap_firmware(src_address, pbit_bytes,
                             layout=soc.config.layout),
        soc, name="rvcap_fw"))
    reports.append(verify_firmware(
        build_hwicap_firmware(src_address, pbit_bytes,
                              layout=soc.config.layout),
        soc, name="hwicap_fw"))
    for name in soc.registered_modules:
        rp = soc.partitions[soc.module_rp_index(name)]
        stream = soc.bitgen.generate(rp, soc.module(name))
        reports.append(verify_bitstream(
            stream, rp, name=f"{name}@{rp.name}"))
    return reports


def _render_sched_report(report) -> str:
    lines = [
        f"requests            {report.requests}",
        f"completed           {report.completed}",
        f"deadline misses     {report.deadline_misses} "
        f"({100 * report.deadline_miss_rate:.2f}%)",
        f"span                {report.span_us / 1e3:.1f} ms simulated",
        f"throughput          {report.throughput_rps:.0f} req/s",
        f"latency p50 / p99   {report.latency_p50_us:.0f} / "
        f"{report.latency_p99_us:.0f} us",
        f"queue wait p99      {report.queue_wait_p99_us:.0f} us",
        f"ICAP utilization    {100 * report.icap_utilization:.2f}%",
        f"reconfigurations    {report.reconfigurations} "
        f"(+{report.reconfig_skips} skips, "
        f"{report.batches} batches, mean size "
        f"{report.mean_batch_size:.2f})",
    ]
    if report.power is not None:
        power = report.power
        lines.append(
            f"energy              {power['energy_nj_total'] / 1e6:.3f} mJ "
            f"modeled (profile {power['profile_version']})")
        if power["power_cap_mw"] is not None:
            lines.append(
                f"power cap           {power['power_cap_mw']:.0f} mW, "
                f"peak window {power['peak_window_power_mw']:.1f} mW, "
                f"{power['power_deferrals']} deferrals")
    if report.cache is not None:
        cache = report.cache
        lines.append(
            f"cache               {cache['hits']} hits / "
            f"{cache['misses']} misses "
            f"({100 * cache['hit_rate']:.1f}%), "
            f"{cache['evictions']} evictions, "
            f"{cache['sd_bytes_loaded']} SD bytes")
    lines.append(f"wall time           {report.wall_seconds:.2f} s")
    return "\n".join(lines)


def _power_kwargs(args: argparse.Namespace) -> dict:
    """Scheduler power kwargs from the shared sched CLI flags."""
    cap = getattr(args, "power_cap_mw", None)
    wants = getattr(args, "power", False) or cap is not None \
        or getattr(args, "power_chrome", None) \
        or getattr(args, "power_vcd", None)
    if not wants:
        return {}
    from repro.power import DEFAULT_PROFILE
    return {
        "power_profile": DEFAULT_PROFILE,
        "peak_power_mw": cap,
        "power_window_us": getattr(args, "power_window_us", 200.0),
    }


def _sched_platform(args: argparse.Namespace, modules: int, frame: int):
    """Build the serving SoC + cache from shared sched CLI flags."""
    from repro.sched import build_sched_soc, make_cache
    manager = build_sched_soc(modules, frame=frame,
                              controller=args.controller)
    cache = None
    if args.cache_kb > 0:
        cache = make_cache(manager, arena_bytes=args.cache_kb << 10,
                           charge_sd_time=not args.no_sd_cost)
    return manager, cache


def _finish_sched(manager, report, args: argparse.Namespace) -> int:
    import json as _json
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(_render_sched_report(report))
    if getattr(args, "output", None):
        Path(args.output).write_text(
            _json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {args.output}")
    soc = manager.soc
    if soc.obs is not None:
        _export_observability(soc, soc.obs, args)
    return 0


def _cmd_sched_bench(args: argparse.Namespace) -> int:
    import json as _json
    from dataclasses import replace
    from repro.sched import (
        WorkloadSpec, module_names, replay, save_trace, synthesize,
    )

    spec = WorkloadSpec(
        requests=args.requests,
        arrival_rate_rps=args.rate,
        modules=args.modules,
        zipf_s=args.zipf,
        deadline_slack_us=args.deadline_slack_us,
        slack_jitter=args.slack_jitter,
        payload=not args.no_payload,
        frame=args.frame,
        timeout_us=args.timeout_us,
        seed=args.seed,
    )
    if args.sweep:
        from repro.sched import bench
        curves = []
        for rate in args.sweep:
            report = bench(replace(spec, arrival_rate_rps=rate),
                           cache_bytes=max(1, args.cache_kb) << 10,
                           charge_sd_time=not args.no_sd_cost,
                           batch_limit=args.batch_limit,
                           drop_late=args.drop_late,
                           controller=args.controller,
                           reconfig_mode=args.mode,
                           verify=args.verify,
                           **_power_kwargs(args))
            entry = report.to_dict()
            entry["arrival_rate_rps"] = rate
            curves.append(entry)
            if not args.json:
                print(f"-- {rate:.0f} req/s --")
                print(_render_sched_report(report), end="\n\n")
        if args.json:
            print(_json.dumps(curves, indent=2))
        if args.output:
            Path(args.output).write_text(
                _json.dumps(curves, indent=2) + "\n")
            print(f"sweep written to {args.output}")
        return 0
    requests = synthesize(spec)
    if args.emit_trace:
        save_trace(requests, args.emit_trace, spec=spec)
        print(f"trace written to {args.emit_trace}")
    manager, cache = _sched_platform(args, spec.modules, spec.frame)
    warm = module_names(min(args.prefetch_hot, spec.modules))
    report = replay(manager, requests, cache=cache,
                    batch_limit=args.batch_limit, drop_late=args.drop_late,
                    reconfig_mode=args.mode, verify=args.verify,
                    prefetch=warm or None, **_power_kwargs(args))
    return _finish_sched(manager, report, args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.sched import load_trace, replay

    requests = load_trace(args.trace)
    if not requests:
        print("serve: trace holds no requests", file=sys.stderr)
        return 2
    names = {request.module for request in requests}
    modules = args.modules
    if modules is None:
        # rmN catalogs size themselves; anything else counts names
        indices = [int(name[2:]) for name in names
                   if name.startswith("rm") and name[2:].isdigit()]
        modules = max(indices) + 1 if len(indices) == len(names) \
            else len(names)
    frame = args.frame
    if frame is None:
        shapes = {request.payload_shape for request in requests
                  if request.payload_shape is not None}
        frame = next(iter(shapes))[0] if len(shapes) == 1 else 64
    manager, cache = _sched_platform(args, modules, frame)
    missing = names - set(manager.soc.registered_modules)
    if missing:
        print(f"serve: trace references unregistered modules "
              f"{sorted(missing)}", file=sys.stderr)
        return 2
    report = replay(manager, requests, cache=cache,
                    batch_limit=args.batch_limit, drop_late=args.drop_late,
                    reconfig_mode=args.mode, verify=args.verify,
                    **_power_kwargs(args))
    return _finish_sched(manager, report, args)


def _cmd_power(args: argparse.Namespace) -> int:
    """Energy/power accounting: breakdown report or cap sweep."""
    if args.power_command == "report":
        from repro.power import (
            build_energy_breakdown,
            render_energy_breakdown,
            traced_reconfiguration,
        )
        soc, result = traced_reconfiguration(
            args.module, controller=args.controller, mode=args.mode)
        breakdown = build_energy_breakdown(
            soc.obs.tracer, soc.sim.freq_hz, tr_reported_us=result.tr_us)
        if args.json:
            print(json.dumps(breakdown.to_dict(), indent=2))
        else:
            print(render_energy_breakdown(breakdown))
        if args.output:
            Path(args.output).write_text(
                json.dumps(breakdown.to_dict(), indent=2) + "\n")
            print(f"energy breakdown written to {args.output}")
        if not breakdown.consistent:
            print("power report: component energies do not sum to the "
                  "window total (>0.1% drift)", file=sys.stderr)
            return 1
        return 0
    # sweep: deadline-miss-vs-energy tradeoff across peak-power caps
    from repro.sched import WorkloadSpec, power_sweep
    spec = WorkloadSpec(
        requests=args.requests, arrival_rate_rps=args.rate,
        modules=args.modules, frame=args.frame,
        deadline_slack_us=args.deadline_slack_us, seed=args.seed)
    points = power_sweep(spec, list(args.caps),
                         cache_bytes=max(1, args.cache_kb) << 10,
                         power_window_us=args.power_window_us)
    if args.json:
        print(json.dumps(points, indent=2))
    else:
        print(f"{'cap_mw':>8} {'peak_mw':>8} {'deferrals':>9} "
              f"{'miss_rate':>9} {'miss_delta':>10} {'energy_mJ':>10}")
        for point in points:
            power = point["power"]
            cap = point["power_cap_mw"]
            print(f"{cap if cap is not None else '-':>8} "
                  f"{power['peak_window_power_mw'] or '-':>8} "
                  f"{power['power_deferrals']:>9} "
                  f"{point['deadline_miss_rate']:>9.4f} "
                  f"{point['miss_delta_vs_uncapped']:>10.4f} "
                  f"{power['energy_nj_total'] / 1e6:>10.3f}")
    if args.output:
        Path(args.output).write_text(json.dumps(points, indent=2) + "\n")
        print(f"power sweep written to {args.output}")
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    from repro.riscv.assembler import assemble
    source = Path(args.input).read_text()
    program = assemble(source, base=args.base, compress=args.compress)
    Path(args.output).write_bytes(program.text)
    print(f"{args.output}: {program.size} bytes at {program.base:#x}, "
          f"entry {program.entry:#x}, {len(program.symbols)} symbols")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.riscv.disasm import disassemble
    image = Path(args.input).read_bytes()
    for line in disassemble(image, base=args.base):
        print(line)
    return 0


def _profile_names() -> list:
    """Scenario names ``repro profile`` accepts (benches + aliases)."""
    from repro.eval.benches import ALIASES, BENCHES
    return sorted(BENCHES) + sorted(ALIASES)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import run_fleet
    params: dict = {}
    if args.task == "faults":
        params = {"points": args.points, "mode": args.mode}
        if args.kinds:
            params["kinds"] = tuple(args.kinds)
    elif args.task == "unroll":
        if args.factors:
            params = {"factors": tuple(args.factors)}
    elif args.task == "sched":
        params = {"requests": args.requests}
        if args.rates:
            params["rates"] = tuple(args.rates)
        if args.power_cap_mw is not None:
            params["power_cap_mw"] = args.power_cap_mw
        elif args.power:
            params["power"] = True
    report = run_fleet(args.task, workers=args.workers, seed=args.seed,
                       params=params)
    if args.json:
        text = report.stable_json() if args.stable \
            else json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(f"fleet report written to {args.output}")
        else:
            print(text)
    else:
        print(report.render())
        if args.output:
            Path(args.output).write_text(report.stable_json() + "\n")
            print(f"fleet report written to {args.output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from repro.eval.benches import resolve_bench

    if args.engine:
        from repro.riscv.hart import set_default_engine
        set_default_engine(args.engine)
    bench = resolve_bench(args.scenario)
    profiler = cProfile.Profile()
    profiler.enable()
    bench()
    profiler.disable()
    if args.output:
        profiler.dump_stats(args.output)
        print(f"profile written to {args.output} "
              "(inspect with python -m pstats)")
        return 0
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RV-CAP reproduction: regenerate the paper's results "
                    "and drive the simulated SoC",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tables", help="regenerate Tables I-IV")
    p.add_argument("which", nargs="*", choices=["1", "2", "3", "4"],
                   help="subset of tables (default: all)")
    p.add_argument("--hwicap-mode", choices=["firmware", "host"],
                   default="firmware",
                   help="measurement mode for the HWICAP throughput")
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("fig3", help="reconfiguration time vs RP size")
    p.add_argument("--controller", choices=["rvcap", "hwicap"],
                   default="rvcap")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("unroll", help="HWICAP loop-unrolling study (ISS)")
    p.add_argument("factors", nargs="*", type=int,
                   default=[1, 2, 4, 8, 16, 32])
    p.set_defaults(func=_cmd_unroll)

    p = sub.add_parser("reconfig", help="run one DPR with trace + stats")
    p.add_argument("module", choices=["sobel", "median", "gaussian"])
    p.add_argument("--controller", choices=["rvcap", "hwicap"],
                   default="rvcap")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_reconfig)

    p = sub.add_parser("trace", help="run one traced DPR and export "
                                     "Perfetto/VCD/metrics artifacts")
    p.add_argument("module", nargs="?", default="sobel",
                   choices=["sobel", "median", "gaussian"])
    p.add_argument("--chrome", metavar="FILE", default=None,
                   help="write a Perfetto-loadable Chrome trace JSON")
    p.add_argument("--vcd", metavar="FILE", default=None,
                   help="write a VCD signal dump")
    p.add_argument("--metrics", metavar="FILE", default=None,
                   help="write Prometheus text-format metrics")
    p.add_argument("--metrics-json", metavar="FILE", default=None,
                   help="write a JSON metrics snapshot")
    p.add_argument("--no-breakdown", action="store_true",
                   help="skip the Tr latency-breakdown report")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("faults", help="fault-injection sweep: detection "
                                      "and recovery rates")
    p.add_argument("--points", type=int, default=2,
                   help="injection points per fault kind")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--kinds", nargs="*",
                   choices=["ddr-read", "bitflip", "truncate",
                            "dma-reset", "sd-read"],
                   help="subset of fault kinds (default: all)")
    p.add_argument("--mode", choices=["interrupt", "polling"],
                   default="interrupt")
    p.add_argument("--module", default=None,
                   help="RM to reconfigure (default: first registered)")
    p.add_argument("--min-recovery", type=float, default=0.95,
                   help="exit 1 when the recovery rate falls below this")
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser("validate", help="fast anchor self-check "
                                        "(~10 s; exit 1 on mismatch)")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("report", help="regenerate every result into one "
                                      "markdown report")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--no-unroll", action="store_true",
                   help="skip the (slower) firmware unroll sweep")
    p.add_argument("--hwicap-mode", choices=["firmware", "host"],
                   default="firmware")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("lint", help="static analysis: SoC design-rule "
                                    "checks + source lints")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable JSON report "
                        "(alias for --format json)")
    p.add_argument("--format", choices=("human", "json", "sarif"),
                   default=None,
                   help="report format (SARIF 2.1.0 for CI annotation)")
    p.add_argument("-o", "--output", default=None,
                   help="write the report to a file instead of stdout")
    p.add_argument("--drc", action="store_true",
                   help="run only the SoC design-rule checks")
    p.add_argument("--ast", action="store_true",
                   help="run only the source-level AST lints")
    p.add_argument("--rules", nargs="*", metavar="RULE_ID",
                   help="restrict the DRC to these rule ids")
    p.add_argument("--suppress", nargs="*", metavar="PATTERN", default=(),
                   help="drop findings matching RULE_ID[:component-glob]")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered DRC rules and exit")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("verify", help="static artifact verification: "
                                      "firmware MMIO/CFG analysis + "
                                      "partial-bitstream checks")
    p.add_argument("--firmware", default=None, metavar="PATH",
                   help="verify a flat firmware binary instead of the "
                        "reference artifacts")
    p.add_argument("--base", default="0x80000000", metavar="ADDR",
                   help="load address of --firmware (default DDR base)")
    p.add_argument("--entry", default=None, metavar="ADDR",
                   help="entry point of --firmware (default: its base)")
    p.add_argument("--bitstream", default=None, metavar="PATH",
                   help="verify a partial-bitstream file instead of the "
                        "reference artifacts")
    p.add_argument("--partition", type=int, default=0,
                   help="partition index --bitstream targets")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable JSON report "
                        "(alias for --format json)")
    p.add_argument("--format", choices=("human", "json", "sarif"),
                   default=None,
                   help="report format (SARIF 2.1.0 for CI annotation)")
    p.add_argument("-o", "--output", default=None,
                   help="write the report to a file instead of stdout")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered verifier rules and exit")
    p.set_defaults(func=_cmd_verify)

    def _add_sched_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-kb", type=int, default=1024,
                       help="DDR bitstream-cache arena size in KiB "
                            "(0 disables the cache)")
        p.add_argument("--no-sd-cost", action="store_true",
                       help="do not charge simulated SD time on cache "
                            "misses")
        p.add_argument("--batch-limit", type=int, default=64,
                       help="max requests served per ICAP batch")
        p.add_argument("--drop-late", action="store_true",
                       help="drop requests whose deadline passed before "
                            "service instead of running them")
        p.add_argument("--verify", action="store_true",
                       help="statically verify each module's bitstream "
                            "before its first reconfiguration; malformed "
                            "streams finish as status=rejected")
        p.add_argument("--controller", choices=["rvcap", "hwicap"],
                       default="rvcap")
        p.add_argument("--mode", choices=["interrupt", "polling"],
                       default="interrupt",
                       help="reconfiguration completion mode")
        p.add_argument("--json", action="store_true",
                       help="print the report as JSON")
        p.add_argument("-o", "--output", default=None,
                       help="also write the JSON report to a file")
        p.add_argument("--trace-chrome", metavar="FILE", default=None,
                       help="write a Perfetto-loadable Chrome trace JSON")
        p.add_argument("--trace-vcd", metavar="FILE", default=None,
                       help="write a VCD signal dump")
        p.add_argument("--metrics", metavar="FILE", default=None,
                       help="write Prometheus text-format metrics")
        p.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="write a JSON metrics snapshot")
        p.add_argument("--power", action="store_true",
                       help="charge modeled energy to every request "
                            "(calibrated default power profile)")
        p.add_argument("--power-cap-mw", type=float, default=None,
                       metavar="MW",
                       help="peak-power cap: defer reconfigurations so "
                            "the windowed average never exceeds this "
                            "(implies --power)")
        p.add_argument("--power-window-us", type=float, default=200.0,
                       metavar="US",
                       help="averaging window for the power cap "
                            "(default 200 us)")
        p.add_argument("--power-chrome", metavar="FILE", default=None,
                       help="write a Chrome trace with a power_mw "
                            "counter track and per-span energy_nj")
        p.add_argument("--power-vcd", metavar="FILE", default=None,
                       help="write a VCD dump including the power_mw "
                            "signal")

    p = sub.add_parser("sched-bench",
                       help="replay a synthetic request stream through "
                            "the asyncio DPR scheduler")
    p.add_argument("--requests", type=int, default=10_000)
    p.add_argument("--rate", type=float, default=2000.0,
                   help="mean arrival rate (requests per simulated "
                        "second)")
    p.add_argument("--modules", type=int, default=8,
                   help="module catalog size (rm0..rmN-1)")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="popularity skew exponent (0 = uniform)")
    p.add_argument("--deadline-slack-us", type=float, default=20_000.0)
    p.add_argument("--slack-jitter", type=float, default=0.5)
    p.add_argument("--frame", type=int, default=64,
                   help="square payload frame edge (pixels)")
    p.add_argument("--no-payload", action="store_true",
                   help="pure reconfiguration requests, no image "
                        "streaming")
    p.add_argument("--timeout-us", type=float, default=None,
                   help="per-request queue timeout")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--prefetch-hot", type=int, default=0,
                   help="warm the cache with the N hottest modules")
    p.add_argument("--sweep", nargs="*", type=float, default=None,
                   metavar="RATE",
                   help="replay at each arrival rate; emit the curve")
    p.add_argument("--emit-trace", metavar="FILE", default=None,
                   help="save the synthesized trace for `repro serve`")
    _add_sched_flags(p)
    p.set_defaults(func=_cmd_sched_bench)

    p = sub.add_parser("serve",
                       help="replay a recorded JSON request trace "
                            "through the scheduler")
    p.add_argument("trace", help="trace file (see sched-bench "
                                 "--emit-trace)")
    p.add_argument("--modules", type=int, default=None,
                   help="catalog size (default: inferred from the "
                        "trace)")
    p.add_argument("--frame", type=int, default=None,
                   help="RM frame edge (default: inferred from the "
                        "trace payloads)")
    _add_sched_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("power", help="cycle-integrated energy/power "
                                     "accounting reports")
    power_sub = p.add_subparsers(dest="power_command", required=True)

    pr = power_sub.add_parser("report",
                              help="energy breakdown of one traced "
                                   "reconfiguration (phases shared with "
                                   "the Tr latency breakdown)")
    pr.add_argument("module", nargs="?", default=None,
                    choices=["sobel", "median", "gaussian"],
                    help="RM to reconfigure (default: first registered)")
    pr.add_argument("--controller", choices=["rvcap", "hwicap"],
                    default="rvcap")
    pr.add_argument("--mode", choices=["interrupt", "polling"],
                    default="interrupt")
    pr.add_argument("--json", action="store_true",
                    help="emit the machine-readable breakdown")
    pr.add_argument("-o", "--output", default=None,
                    help="also write the JSON breakdown to a file")
    pr.set_defaults(func=_cmd_power)

    ps = power_sub.add_parser("sweep",
                              help="replay one workload under several "
                                   "peak-power caps; miss-vs-energy curve")
    ps.add_argument("--caps", nargs="+", type=float, required=True,
                    metavar="MW", help="peak-power caps to sweep")
    ps.add_argument("--power-window-us", type=float, default=200.0)
    ps.add_argument("--requests", type=int, default=200)
    ps.add_argument("--rate", type=float, default=2000.0)
    ps.add_argument("--modules", type=int, default=8)
    ps.add_argument("--frame", type=int, default=32)
    ps.add_argument("--deadline-slack-us", type=float, default=20_000.0)
    ps.add_argument("--cache-kb", type=int, default=1024)
    ps.add_argument("--seed", type=int, default=2026)
    ps.add_argument("--json", action="store_true",
                    help="print the curve as JSON")
    ps.add_argument("-o", "--output", default=None,
                    help="also write the JSON curve to a file")
    ps.set_defaults(func=_cmd_power)

    p = sub.add_parser("asm", help="assemble an RV64 source file")
    p.add_argument("input")
    p.add_argument("-o", "--output", default="a.bin")
    p.add_argument("--base", type=lambda x: int(x, 0), default=0x1_0000)
    p.add_argument("--compress", action="store_true",
                   help="enable the RVC relaxation pass")
    p.set_defaults(func=_cmd_asm)

    p = sub.add_parser("disasm", help="disassemble a flat binary image")
    p.add_argument("input")
    p.add_argument("--base", type=lambda x: int(x, 0), default=0x1_0000)
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("fleet", help="shard an evaluation workload over "
                                     "worker processes")
    p.add_argument("task", choices=["faults", "unroll", "sched"])
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = serial, same report)")
    p.add_argument("--seed", type=int, default=2026,
                   help="campaign seed (default: 2026)")
    p.add_argument("--points", type=int, default=2,
                   help="faults: injections per kind (default: 2)")
    p.add_argument("--kinds", nargs="+", default=None, metavar="KIND",
                   help="faults: subset of fault kinds to sweep")
    p.add_argument("--mode", choices=["interrupt", "polling"],
                   default="interrupt",
                   help="faults: completion-wait mode (default: interrupt)")
    p.add_argument("--factors", nargs="+", type=int, default=None,
                   metavar="N", help="unroll: loop-unroll factors")
    p.add_argument("--rates", nargs="+", type=float, default=None,
                   metavar="RPS", help="sched: arrival rates to sweep")
    p.add_argument("--requests", type=int, default=400,
                   help="sched: requests per rate (default: 400)")
    p.add_argument("--power", action="store_true",
                   help="sched: charge modeled energy to every request")
    p.add_argument("--power-cap-mw", type=float, default=None,
                   metavar="MW",
                   help="sched: peak-power cap for every shard "
                        "(implies --power)")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON")
    p.add_argument("--stable", action="store_true",
                   help="with --json: deterministic fields only "
                        "(drops wall time and worker count)")
    p.add_argument("-o", "--output", default=None,
                   help="also write the stable JSON report to a file")
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("profile", help="cProfile a named perf bench")
    p.add_argument("scenario", choices=_profile_names(),
                   help="any bench from benchmarks/perf.py (or a "
                        "historical alias)")
    p.add_argument("--engine", choices=["interp", "block"], default=None,
                   help="ISS execution engine for the workload "
                        "(default: process default)")
    p.add_argument("--sort", default="cumulative",
                   help="pstats sort key (default: cumulative)")
    p.add_argument("--top", "--limit", dest="top", type=int, default=30,
                   help="rows of pstats output (default: 30)")
    p.add_argument("-o", "--output", default=None,
                   help="dump raw profile data instead of printing")
    p.set_defaults(func=_cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
