"""Deterministic fault injectors for the simulated SoC.

Every injector *wraps* an existing component (an AXI port, a block
device, a DMA channel) instead of forking it, so the system under test
runs the exact production code paths with one surgically placed
failure.  All randomness lives in :class:`FaultPlan`, seeded once per
campaign, so a failing sweep point reproduces bit-for-bit from its
seed.

Injection points
----------------
* :class:`FaultyAxiPort` — a DDR/crossbar proxy whose Nth read or
  write byte fails the surrounding burst with SLVERR (the DMA observes
  a mid-transfer bus error);
* :class:`FaultyBlockDevice` — an SD block-device proxy failing a
  chosen ``read_block`` call (by ordinal or LBA);
* :class:`DmaResetInjector` — a simulation process that soft-resets a
  DMA channel a chosen number of cycles into its transfer;
* :func:`flip_word_bit` / :func:`truncate_at_word` — pure bitstream
  corruptions applied to the in-DDR ``.pbit`` image.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.axi.interface import AxiSlave
from repro.axi.types import AxiResp, AxiResult
from repro.core.dma import CR_RESET, DmaChannel
from repro.errors import FilesystemError
from repro.fat32.blockdev import BlockDevice
from repro.sim.kernel import Delay, Simulator


class FaultyAxiPort(AxiSlave):
    """AXI slave proxy that fails one burst at a chosen byte offset.

    Offsets are *cumulative* over all traffic seen by the proxy: with
    ``fail_read_at=4096``, the read burst containing the 4096th byte
    returns SLVERR.  With ``once=True`` (default) the injector disarms
    after firing, so a retried transfer goes through clean — exactly
    the transient-fault model the recovery path is designed for.
    ``once=False`` models a hard fault: every burst from the offset
    onward fails, so no amount of retrying gets past it.
    """

    def __init__(self, inner: AxiSlave, *,
                 fail_read_at: Optional[int] = None,
                 fail_write_at: Optional[int] = None,
                 once: bool = True) -> None:
        self.inner = inner
        self.fail_read_at = fail_read_at
        self.fail_write_at = fail_write_at
        self.once = once
        self.armed = True
        self.faults_injected = 0
        self.read_bytes = 0
        self.write_bytes = 0

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def _trip(self, threshold: Optional[int], seen: int, nbytes: int) -> bool:
        if threshold is None or not self.armed:
            return False
        if not seen <= threshold < seen + nbytes:
            return False
        self.faults_injected += 1
        if self.once:
            self.armed = False
        return True

    # ------------------------------------------------------------------
    # AxiSlave implementation: delegate, with the fault check on bursts
    # ------------------------------------------------------------------
    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self.read_burst(addr, nbytes, now)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self.write_burst(addr, data, now)

    def read_burst(self, addr: int, nbytes: int, now: int) -> AxiResult:
        tripped = self._trip(self.fail_read_at, self.read_bytes, nbytes)
        self.read_bytes += nbytes
        if tripped:
            if not self.once:
                self.fail_read_at = self.read_bytes  # hard fault: stay down
            return AxiResult(b"", now + 1, AxiResp.SLVERR)
        return self.inner.read_burst(addr, nbytes, now)

    def write_burst(self, addr: int, data: bytes, now: int) -> AxiResult:
        tripped = self._trip(self.fail_write_at, self.write_bytes, len(data))
        self.write_bytes += len(data)
        if tripped:
            if not self.once:
                self.fail_write_at = self.write_bytes
            return AxiResult(b"", now + 1, AxiResp.SLVERR)
        return self.inner.write_burst(addr, data, now)


def install_mem_fault(channel: DmaChannel, **kwargs) -> FaultyAxiPort:
    """Interpose a :class:`FaultyAxiPort` on a DMA channel's memory port."""
    proxy = FaultyAxiPort(channel.mem_port, **kwargs)
    channel.mem_port = proxy
    return proxy


def remove_mem_fault(channel: DmaChannel, proxy: FaultyAxiPort) -> None:
    """Undo :func:`install_mem_fault` (restores the wrapped port)."""
    if channel.mem_port is proxy:
        channel.mem_port = proxy.inner


class FaultyBlockDevice(BlockDevice):
    """Block-device proxy failing a chosen ``read_block`` call.

    ``fail_at_read`` counts calls (0 = the very first read);
    ``fail_lba`` targets one sector regardless of order.  Writes pass
    through untouched.
    """

    def __init__(self, inner: BlockDevice, *,
                 fail_at_read: Optional[int] = None,
                 fail_lba: Optional[int] = None,
                 once: bool = True) -> None:
        self.inner = inner
        self.fail_at_read = fail_at_read
        self.fail_lba = fail_lba
        self.once = once
        self.armed = True
        self.faults_injected = 0
        self.reads = 0

    @property
    def num_blocks(self) -> int:
        return self.inner.num_blocks

    def read_block(self, lba: int) -> bytes:
        ordinal = self.reads
        self.reads += 1
        hit = self.armed and (
            (self.fail_at_read is not None and ordinal == self.fail_at_read)
            or (self.fail_lba is not None and lba == self.fail_lba)
        )
        if hit:
            self.faults_injected += 1
            if self.once:
                self.armed = False
            raise FilesystemError(
                f"injected SD read failure at block {lba} "
                f"(read #{ordinal})"
            )
        return self.inner.read_block(lba)

    def write_block(self, lba: int, data: bytes) -> None:
        self.inner.write_block(lba, data)


class DmaResetInjector:
    """Soft-reset a DMA channel mid-transfer, at a deterministic point.

    A simulation process waits for the channel to go busy, sleeps
    ``delay_cycles``, and writes ``DMACR.Reset`` if the transfer is
    still in flight — modelling an external agent (watchdog, another
    core) yanking the channel out from under the driver.
    """

    def __init__(self, sim: Simulator, channel: DmaChannel,
                 delay_cycles: int) -> None:
        self.sim = sim
        self.channel = channel
        self.delay_cycles = delay_cycles
        self.fired = False
        self._armed = True
        sim.add_process(self._saboteur(), name=f"fault.reset.{channel.name}")

    def cancel(self) -> None:
        self._armed = False

    def _saboteur(self):
        while self._armed and not self.channel.busy:
            yield Delay(32)
        if self._armed:
            yield Delay(self.delay_cycles)
        if self._armed and self.channel.busy:
            self.channel.write_cr(CR_RESET)
            self.fired = True


# ----------------------------------------------------------------------
# bitstream corruptions (pure functions over the .pbit bytes)
# ----------------------------------------------------------------------
def flip_word_bit(data: bytes, word_index: int, bit: int) -> bytes:
    """Flip one bit of the ``word_index``-th big-endian config word."""
    if not 0 <= word_index < len(data) // 4:
        raise ValueError(f"word {word_index} outside the bitstream")
    if not 0 <= bit < 32:
        raise ValueError(f"bit {bit} outside a 32-bit word")
    out = bytearray(data)
    word = int.from_bytes(out[4 * word_index : 4 * word_index + 4], "big")
    word ^= 1 << bit
    out[4 * word_index : 4 * word_index + 4] = word.to_bytes(4, "big")
    return bytes(out)


def truncate_at_word(data: bytes, word_index: int) -> bytes:
    """Cut the bitstream short after ``word_index`` words."""
    if not 0 < word_index <= len(data) // 4:
        raise ValueError(f"word {word_index} outside the bitstream")
    return data[: 4 * word_index]


class FaultPlan:
    """Seeded source of injection points: one plan, one reproducible sweep."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    def byte_offset(self, nbytes: int) -> int:
        """A byte offset inside the middle half of an ``nbytes`` object.

        The middle half keeps the point inside the bitstream's frame
        payload (the header and trailer are a few hundred bytes of a
        multi-hundred-KB file), so the fault lands mid-FDRI.
        """
        return self.rng.randrange(nbytes // 4, 3 * nbytes // 4)

    def word_index(self, nwords: int) -> int:
        """A word index inside the middle half of the bitstream."""
        return self.rng.randrange(max(1, nwords // 4), 3 * nwords // 4)

    def bit(self) -> int:
        return self.rng.randrange(32)

    def fraction(self, lo: float = 0.2, hi: float = 0.8) -> float:
        return self.rng.uniform(lo, hi)

    def read_ordinal(self, hi: int = 40) -> int:
        """Which SD block read to fail (early enough to always fire)."""
        return self.rng.randrange(1, hi)
