"""Deterministic fault injection and the detection/recovery campaign."""

from repro.faults.campaign import (
    ALL_KINDS,
    FaultOutcome,
    FaultSweepReport,
    run_fault_sweep,
    sweep_kinds,
)
from repro.faults.injectors import (
    DmaResetInjector,
    FaultPlan,
    FaultyAxiPort,
    FaultyBlockDevice,
    flip_word_bit,
    install_mem_fault,
    remove_mem_fault,
    truncate_at_word,
)

__all__ = [
    "ALL_KINDS",
    "DmaResetInjector",
    "FaultOutcome",
    "FaultPlan",
    "FaultSweepReport",
    "FaultyAxiPort",
    "FaultyBlockDevice",
    "flip_word_bit",
    "install_mem_fault",
    "remove_mem_fault",
    "run_fault_sweep",
    "sweep_kinds",
    "truncate_at_word",
]
