"""Fault-sweep campaign: inject, detect, recover, and score.

The campaign answers the safe-DPR question quantitatively: *for each
class of runtime fault, does the system detect it (no silent
corruption) and does the recovery sequence bring it back to a working
configuration?*  Each sweep point is one inject → attempt → recover
cycle against a live provisioned SoC, with the injection coordinates
drawn from a seeded :class:`~repro.faults.injectors.FaultPlan` so any
point replays deterministically.

Fault kinds
-----------
``ddr-read``
    A DDR read burst fails (SLVERR) mid-bitstream; the DMA latches
    ``DMASR.Err_Irq`` and the driver sees a transfer error.
``bitflip``
    One bit of the in-DDR ``.pbit`` image flips; the ICAP's CRC check
    catches it and the staged frames are dropped.
``truncate``
    The transfer length is cut mid-payload; the ICAP never reaches
    DESYNC and the driver flags the incomplete session.
``dma-reset``
    The DMA channel is soft-reset mid-transfer by an external agent;
    the driver's completion wait times out (interrupt mode) or sees
    Halted-without-Idle (polling mode).
``sd-read``
    An SD block read fails during ``init_RModules``; the filesystem
    layer raises before anything touches the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

from repro.drivers.manager import ReconfigurationManager
from repro.errors import ControllerError, FilesystemError
from repro.fat32.blockdev import SdBackdoorBlockDevice
from repro.faults.injectors import (
    DmaResetInjector,
    FaultPlan,
    FaultyBlockDevice,
    flip_word_bit,
    install_mem_fault,
    remove_mem_fault,
)

ALL_KINDS = ("ddr-read", "bitflip", "truncate", "dma-reset", "sd-read")


@dataclass(frozen=True)
class FaultOutcome:
    """One sweep point: where the fault landed and how the system fared."""

    kind: str
    point: str
    detected: bool
    recovered: bool
    error: str


@dataclass(frozen=True)
class FaultSweepReport:
    """Detection/recovery scorecard over all sweep points."""

    outcomes: tuple[FaultOutcome, ...]
    seed: int
    mode: str
    module: str

    @property
    def points(self) -> int:
        return len(self.outcomes)

    @property
    def detection_rate(self) -> float:
        if not self.outcomes:
            return 1.0
        return sum(o.detected for o in self.outcomes) / len(self.outcomes)

    @property
    def recovery_rate(self) -> float:
        if not self.outcomes:
            return 1.0
        return sum(o.recovered for o in self.outcomes) / len(self.outcomes)

    def kind_outcomes(self, kind: str) -> List[FaultOutcome]:
        return [o for o in self.outcomes if o.kind == kind]

    def render(self) -> str:
        lines = [
            f"fault sweep: {self.points} points, seed {self.seed}, "
            f"mode {self.mode}, module {self.module!r}",
            f"{'kind':<10} {'points':>6} {'detected':>9} {'recovered':>10}",
        ]
        kinds = []
        for outcome in self.outcomes:
            if outcome.kind not in kinds:
                kinds.append(outcome.kind)
        for kind in kinds:
            group = self.kind_outcomes(kind)
            lines.append(f"{kind:<10} {len(group):>6} "
                         f"{sum(o.detected for o in group):>9} "
                         f"{sum(o.recovered for o in group):>10}")
        lines.append(f"detection rate: {100 * self.detection_rate:.1f}%   "
                     f"recovery rate: {100 * self.recovery_rate:.1f}%")
        return "\n".join(lines)


def _default_timeout_us(pbit_size: int) -> float:
    """3x the 400 MB/s lower-bound transfer time, floored at 200 us."""
    return max(200.0, 3 * pbit_size / 400.0)


def run_fault_sweep(
    manager: ReconfigurationManager,
    *,
    points: int = 2,
    seed: int = 2026,
    kinds: Sequence[str] = ALL_KINDS,
    mode: str = "interrupt",
    module: Optional[str] = None,
    timeout_us: Optional[float] = None,
    max_attempts: int = 3,
) -> FaultSweepReport:
    """Sweep ``points`` injections of each kind against ``manager``.

    The manager must be provisioned (``init_rmodules`` already run).
    Returns the scorecard; never raises on a failed point — failures
    show up as ``detected=False`` / ``recovered=False`` outcomes.
    """
    unknown = set(kinds) - set(ALL_KINDS)
    if unknown:
        raise ControllerError(f"unknown fault kinds: {sorted(unknown)}")
    if points < 1:
        raise ControllerError("points must be >= 1 (an empty sweep would "
                              "report vacuous 100% rates)")
    soc = manager.soc
    module = module or soc.registered_modules[0]
    descriptor = manager.descriptor(module)
    deadline = timeout_us if timeout_us is not None \
        else _default_timeout_us(descriptor.pbit_size)
    plan = FaultPlan(seed)
    outcomes: List[FaultOutcome] = []
    for kind in kinds:
        for _ in range(points):
            outcomes.append(_run_point(kind, plan, manager, descriptor,
                                       mode=mode, timeout_us=deadline,
                                       max_attempts=max_attempts))
    return FaultSweepReport(outcomes=tuple(outcomes), seed=seed,
                            mode=mode, module=module)


def _attempt(driver, descriptor, *, mode: str, timeout_us: float,
             expect: type = ControllerError) -> tuple[bool, str]:
    """One reconfiguration attempt; returns (detected, error text)."""
    try:
        driver.init_reconfig_process(descriptor, mode=mode,
                                     timeout_us=timeout_us)
    except expect as exc:
        return True, str(exc)
    return False, "fault not detected (reconfiguration reported success)"


def _recover(manager, descriptor, *, mode: str, timeout_us: float,
             max_attempts: int) -> tuple[bool, str]:
    """Run the driver's recovery sequence; returns (recovered, error)."""
    soc = manager.soc
    try:
        manager.rvcap.recover_and_retry(descriptor, mode=mode,
                                        timeout_us=timeout_us,
                                        max_attempts=max_attempts)
    except ControllerError as exc:
        return False, str(exc)
    if soc.active_module(0) != descriptor.name:
        return False, (f"recovery reported success but RP holds "
                       f"{soc.active_module(0)!r}")
    return True, ""


def _run_point(kind: str, plan: FaultPlan, manager, descriptor, *,
               mode: str, timeout_us: float,
               max_attempts: int) -> FaultOutcome:
    soc = manager.soc
    driver = manager.rvcap
    channel = soc.rvcap.dma.mm2s

    if kind == "ddr-read":
        offset = plan.byte_offset(descriptor.pbit_size)
        # cumulative offsets: fail `offset` bytes into *this* transfer
        proxy = install_mem_fault(channel, fail_read_at=offset)
        try:
            detected, error = _attempt(driver, descriptor, mode=mode,
                                       timeout_us=timeout_us)
        finally:
            remove_mem_fault(channel, proxy)
        recovered, rec_error = _recover(manager, descriptor, mode=mode,
                                        timeout_us=timeout_us,
                                        max_attempts=max_attempts)
        return FaultOutcome(kind, f"read byte {offset}", detected,
                            recovered, error or rec_error)

    if kind == "bitflip":
        word = plan.word_index(descriptor.pbit_size // 4)
        bit = plan.bit()
        addr = descriptor.start_address + 4 * word
        original = soc.ddr_read(addr, 4)
        soc.ddr_write(addr, flip_word_bit(original, 0, bit))
        detected, error = _attempt(driver, descriptor, mode=mode,
                                   timeout_us=timeout_us)
        # recovery re-fetches the pbit from storage; the backdoor
        # restore models that re-read of the intact SD copy
        soc.ddr_write(addr, original)
        recovered, rec_error = _recover(manager, descriptor, mode=mode,
                                        timeout_us=timeout_us,
                                        max_attempts=max_attempts)
        return FaultOutcome(kind, f"word {word} bit {bit}", detected,
                            recovered, error or rec_error)

    if kind == "truncate":
        word = plan.word_index(descriptor.pbit_size // 4)
        short = replace(descriptor, pbit_size=4 * word)
        detected, error = _attempt(driver, short, mode=mode,
                                   timeout_us=timeout_us)
        recovered, rec_error = _recover(manager, descriptor, mode=mode,
                                        timeout_us=timeout_us,
                                        max_attempts=max_attempts)
        return FaultOutcome(kind, f"cut at word {word}", detected,
                            recovered, error or rec_error)

    if kind == "dma-reset":
        # reset a deterministic fraction into the ~4 B/cycle transfer
        delay = max(1, int(plan.fraction() * descriptor.pbit_size / 4))
        injector = DmaResetInjector(soc.sim, channel, delay)
        try:
            detected, error = _attempt(driver, descriptor, mode=mode,
                                       timeout_us=timeout_us)
        finally:
            injector.cancel()
        recovered, rec_error = _recover(manager, descriptor, mode=mode,
                                        timeout_us=timeout_us,
                                        max_attempts=max_attempts)
        return FaultOutcome(kind, f"reset after {delay} cycles", detected,
                            recovered, error or rec_error)

    if kind == "sd-read":
        ordinal = plan.read_ordinal()
        faulty = FaultyBlockDevice(SdBackdoorBlockDevice(soc.sdcard),
                                   fail_at_read=ordinal)
        try:
            manager.init_rmodules(block_device=faulty)
            detected, error = False, "SD fault not detected"
        except FilesystemError as exc:
            detected, error = True, str(exc)
        # recovery: re-run init_RModules against the healthy card,
        # then prove the stack works end to end with one clean DPR
        try:
            manager.init_rmodules()
            driver.init_reconfig_process(descriptor, mode=mode,
                                         timeout_us=timeout_us)
            recovered, rec_error = True, ""
        except (FilesystemError, ControllerError) as exc:
            recovered, rec_error = False, str(exc)
        return FaultOutcome(kind, f"SD read #{ordinal}", detected,
                            recovered, error if detected else rec_error)

    raise ControllerError(f"unknown fault kind {kind!r}")


def sweep_kinds(kinds: Optional[Iterable[str]]) -> tuple[str, ...]:
    """Normalize a user-supplied kind list (None = all)."""
    return tuple(kinds) if kinds else ALL_KINDS
