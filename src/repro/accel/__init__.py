"""Reconfigurable hardware accelerators (the Sec. IV-D case study).

Three HLS-style streaming 3x3 image filters — Sobel, Median, Gaussian —
each packaged as a reconfigurable module with a 64-bit AXI-Stream
interface, a golden numpy reference, and per-filter timing calibrated
to the paper's measured compute times (Table IV: 588 / 598 / 606 us on
a 512x512 8-bit frame at 100 MHz).
"""

from __future__ import annotations

from repro.accel.base import AcceleratorTiming, StreamAccelerator, BYTES_PER_BEAT
from repro.accel.golden import (
    GOLDEN_FILTERS,
    erode3x3,
    gaussian3x3,
    median3x3,
    sobel3x3,
)
from repro.accel.images import (
    checkerboard_image,
    gradient_image,
    noise_image,
    scene_image,
)
from repro.fpga.partition import ReconfigurableModule, ResourceBudget

#: Per-filter pipeline timing, calibrated so a 512x512 frame (32768
#: input beats) completes in exactly the paper's T_c (see EXPERIMENTS.md):
#:   T_c = startup + beats * ii  ->  606 / 598 / 588 us at 100 MHz.
ACCELERATOR_TIMINGS: dict[str, AcceleratorTiming] = {
    "gaussian": AcceleratorTiming(ii_num=6978, ii_den=4096, startup_cycles=600),
    "median": AcceleratorTiming(ii_num=6878, ii_den=4096, startup_cycles=600),
    "sobel": AcceleratorTiming(ii_num=6751, ii_den=4096, startup_cycles=600),
    # erode is our own extension RM (no paper reference); timing picked
    # between sobel and median
    "erode": AcceleratorTiming(ii_num=6800, ii_den=4096, startup_cycles=600),
}

#: Resource footprints of the three RMs (Table III).
ACCELERATOR_RESOURCES: dict[str, ResourceBudget] = {
    "gaussian": ResourceBudget(luts=901, ffs=773, brams=4, dsps=0),
    "median": ResourceBudget(luts=2325, ffs=998, brams=2, dsps=0),
    "sobel": ResourceBudget(luts=1830, ffs=3224, brams=2, dsps=16),
    # extension RM: comparator-tree erosion, no DSPs (our estimate)
    "erode": ResourceBudget(luts=640, ffs=512, brams=2, dsps=0),
}


def make_accelerator(behavior: str, *, width: int = 512,
                     height: int = 512) -> StreamAccelerator:
    """Instantiate the streaming RM for a behaviour key."""
    golden = GOLDEN_FILTERS[behavior]
    timing = ACCELERATOR_TIMINGS[behavior]
    return StreamAccelerator(behavior, golden, timing, width=width,
                             height=height)


def make_filter_module(behavior: str) -> ReconfigurableModule:
    """The RM descriptor (name, resources, behaviour) for a filter."""
    return ReconfigurableModule(
        name=behavior,
        resources=ACCELERATOR_RESOURCES[behavior],
        behavior=behavior,
    )


__all__ = [
    "AcceleratorTiming",
    "StreamAccelerator",
    "BYTES_PER_BEAT",
    "GOLDEN_FILTERS",
    "gaussian3x3",
    "median3x3",
    "sobel3x3",
    "erode3x3",
    "ACCELERATOR_TIMINGS",
    "ACCELERATOR_RESOURCES",
    "make_accelerator",
    "make_filter_module",
    "gradient_image",
    "checkerboard_image",
    "noise_image",
    "scene_image",
]
