"""Streaming accelerator base: an RM with AXI-Stream in/out.

Dataflow model (matches the HLS cores of Sec. IV-D): the filter
consumes the input image as a 64-bit AXI-Stream (8 pixels/beat),
buffers rows in line buffers, and emits each output row a fixed
pipeline delay after the corresponding input row was consumed.  The
initiation interval (II, in cycles per input beat) and pipeline startup
latency are per-filter parameters calibrated to the paper's measured
compute times (Table IV); the *functional* output is computed row-wise
with the golden numpy filters and is bit-exact against them.

Timing bookkeeping uses a fixed-point II (``ii_num / ii_den``) so the
cycle accounting stays integral and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.axi.stream import StreamSink, StreamSource
from repro.errors import ControllerError

BYTES_PER_BEAT = 8


@dataclass(frozen=True)
class AcceleratorTiming:
    """Calibrated timing of one HLS filter core."""

    ii_num: int      # cycles per input beat, numerator
    ii_den: int      # ... denominator
    startup_cycles: int  # line-buffer fill + pipeline depth

    def cycles_for_beats(self, beats: int) -> int:
        return (beats * self.ii_num + self.ii_den - 1) // self.ii_den


class StreamAccelerator(StreamSink, StreamSource):
    """A 3x3-window streaming image filter RM."""

    def __init__(
        self,
        name: str,
        golden: Callable[[np.ndarray], np.ndarray],
        timing: AcceleratorTiming,
        *,
        width: int = 512,
        height: int = 512,
    ) -> None:
        if width % BYTES_PER_BEAT:
            raise ControllerError("image width must be a multiple of 8 pixels")
        self.name = name
        self.golden = golden
        self.timing = timing
        self.width = width
        self.height = height
        self._in_bytes = bytearray()
        self._beats_consumed = 0
        self._in_busy = 0
        self._started_at: int | None = None
        #: (available_cycle, row_bytes) queue of computed output rows
        self._out_rows: List[Tuple[int, bytes]] = []
        self._rows_computed = 0
        self._out_cursor = 0
        self.images_processed = 0

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    @property
    def image_bytes(self) -> int:
        return self.width * self.height

    @property
    def busy(self) -> bool:
        return bool(self._in_bytes) and self._rows_computed < self.height

    def reset(self) -> None:
        """Prepare for a new image (RM control start pulse)."""
        self._in_bytes.clear()
        self._beats_consumed = 0
        self._in_busy = 0
        self._started_at = None
        self._out_rows.clear()
        self._rows_computed = 0
        self._out_cursor = 0

    # ------------------------------------------------------------------
    # input stream (from DMA MM2S through the switch)
    # ------------------------------------------------------------------
    def accept(self, data: bytes, now: int) -> int:
        if self._started_at is None:
            self._started_at = now
        if len(self._in_bytes) + len(data) > self.image_bytes:
            raise ControllerError(
                f"RM {self.name!r}: input overruns the {self.width}x"
                f"{self.height} frame"
            )
        self._in_bytes.extend(data)
        self._beats_consumed += -(-len(data) // BYTES_PER_BEAT)
        consumed_cycles = self.timing.cycles_for_beats(self._beats_consumed)
        self._in_busy = max(now, self._started_at + consumed_cycles)
        self._compute_ready_rows()
        return self._in_busy

    def _rows_received(self) -> int:
        return len(self._in_bytes) // self.width

    def _computable_rows(self) -> int:
        """Output rows computable from the input received so far.

        A 3x3 window needs one row of lookahead; the final row becomes
        computable only when the full frame has arrived.
        """
        received = self._rows_received()
        if received >= self.height:
            return self.height
        return max(0, received - 1)

    def _compute_ready_rows(self) -> None:
        target = self._computable_rows()
        if target <= self._rows_computed:
            return
        rows = self._rows_received()
        image_so_far = np.frombuffer(
            bytes(self._in_bytes[: rows * self.width]), dtype=np.uint8
        ).reshape(rows, self.width)
        # compute on a replicated-edge slab so rows match the full-frame
        # golden output exactly
        r0 = self._rows_computed
        r1 = target
        lo = max(0, r0 - 1)
        hi = min(rows, r1 + 1)
        # The golden filter edge-replicates the slab borders; extracted
        # rows always have their true context rows inside the slab, so
        # the synthetic replication never leaks into the output.
        filtered = self.golden(image_so_far[lo:hi])
        out_rows = filtered[r0 - lo : r1 - lo]
        assert out_rows.shape[0] == r1 - r0
        out_beats_per_row = self.width // BYTES_PER_BEAT
        for k, row in enumerate(out_rows):
            row_index = r0 + k
            # the row leaves the pipeline startup_cycles after the
            # II-paced consumption of its last needed input beat
            needed_beats = min((row_index + 2), self.height) * out_beats_per_row
            base = self._started_at if self._started_at is not None else 0
            avail = (base + self.timing.startup_cycles
                     + self.timing.cycles_for_beats(needed_beats))
            self._out_rows.append((avail, row.tobytes()))
        self._rows_computed = r1
        if self._rows_computed == self.height:
            self.images_processed += 1

    # ------------------------------------------------------------------
    # output stream (to DMA S2MM through the switch)
    # ------------------------------------------------------------------
    def produce(self, nbytes: int, now: int) -> tuple[bytes, int]:
        if self._out_cursor >= len(self._out_rows):
            if self._rows_computed >= self.height:
                return b"", now  # end of frame
            # not ready: ask the DMA to retry once more input landed
            retry = max(now + 1, self._in_busy)
            return b"", retry
        chunks: list[bytes] = []
        t = now
        taken = 0
        while taken < nbytes and self._out_cursor < len(self._out_rows):
            avail, row = self._out_rows[self._out_cursor]
            take = min(nbytes - taken, len(row))
            if take < len(row):
                # split the row; keep the remainder at the cursor
                self._out_rows[self._out_cursor] = (avail, row[take:])
            else:
                self._out_cursor += 1
            chunks.append(row[:take])
            taken += take
            t = max(t, avail)
        return b"".join(chunks), t
