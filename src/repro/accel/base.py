"""Streaming accelerator base: an RM with AXI-Stream in/out.

Dataflow model (matches the HLS cores of Sec. IV-D): the filter
consumes the input image as a 64-bit AXI-Stream (8 pixels/beat),
buffers rows in line buffers, and emits each output row a fixed
pipeline delay after the corresponding input row was consumed.  The
initiation interval (II, in cycles per input beat) and pipeline startup
latency are per-filter parameters calibrated to the paper's measured
compute times (Table IV); the *functional* output is computed row-wise
with the golden numpy filters and is bit-exact against them.

Timing bookkeeping uses a fixed-point II (``ii_num / ii_den``) so the
cycle accounting stays integral and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.axi.stream import StreamSink, StreamSource
from repro.errors import ControllerError

BYTES_PER_BEAT = 8

#: frames at or below this size memoize golden-filter slabs (bytes)
_GOLDEN_MEMO_MAX_IMAGE = 64 * 1024
#: memo entries kept before the table is recycled
_GOLDEN_MEMO_MAX_ENTRIES = 256
#: process-wide memo — accelerator instances are rebuilt on every
#: reconfiguration (the SoC re-derives the RM from configuration
#: memory), so the cache must outlive any single instance.  Keyed by
#: the golden callable itself plus the exact input slab, hence safe
#: for any pure filter.
_GOLDEN_MEMO: dict = {}


@dataclass(frozen=True)
class AcceleratorTiming:
    """Calibrated timing of one HLS filter core."""

    ii_num: int      # cycles per input beat, numerator
    ii_den: int      # ... denominator
    startup_cycles: int  # line-buffer fill + pipeline depth

    def cycles_for_beats(self, beats: int) -> int:
        return (beats * self.ii_num + self.ii_den - 1) // self.ii_den


class StreamAccelerator(StreamSink, StreamSource):
    """A 3x3-window streaming image filter RM."""

    def __init__(
        self,
        name: str,
        golden: Callable[[np.ndarray], np.ndarray],
        timing: AcceleratorTiming,
        *,
        width: int = 512,
        height: int = 512,
    ) -> None:
        if width % BYTES_PER_BEAT:
            raise ControllerError("image width must be a multiple of 8 pixels")
        self.name = name
        self.golden = golden
        self.timing = timing
        self.width = width
        self.height = height
        self._in_bytes = bytearray()
        self._beats_consumed = 0
        self._in_busy = 0
        self._started_at: int | None = None
        #: (available_cycle, row_bytes) queue of computed output rows
        self._out_rows: List[Tuple[int, bytes]] = []
        self._rows_computed = 0
        self._out_cursor = 0
        self.images_processed = 0
        # golden filters are pure functions of the pixel data, so for
        # small frames (the serving workload replays identical frames)
        # the per-slab filter results are memoized on the exact input
        # slab; content-keyed, hence observably identical to
        # recomputing.  Large frames skip the memo (keying cost and
        # retained output would not pay for themselves).
        self._memo_enabled = self.image_bytes <= _GOLDEN_MEMO_MAX_IMAGE

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    @property
    def image_bytes(self) -> int:
        return self.width * self.height

    @property
    def busy(self) -> bool:
        return bool(self._in_bytes) and self._rows_computed < self.height

    @property
    def busy_cycles(self) -> int:
        """Pipeline-busy cycles of the in-flight/last image.

        Derived on demand from the II-paced beat count plus the
        pipeline fill, so the streaming path pays nothing; the power
        model charges this window at ``accel_active_mw``.
        """
        if self._beats_consumed == 0:
            return 0
        return (self.timing.startup_cycles
                + self.timing.cycles_for_beats(self._beats_consumed))

    def reset(self) -> None:
        """Prepare for a new image (RM control start pulse)."""
        self._in_bytes.clear()
        self._beats_consumed = 0
        self._in_busy = 0
        self._started_at = None
        self._out_rows.clear()
        self._rows_computed = 0
        self._out_cursor = 0

    # ------------------------------------------------------------------
    # input stream (from DMA MM2S through the switch)
    # ------------------------------------------------------------------
    def accept(self, data: bytes, now: int) -> int:
        if self._started_at is None:
            self._started_at = now
        if len(self._in_bytes) + len(data) > self.image_bytes:
            raise ControllerError(
                f"RM {self.name!r}: input overruns the {self.width}x"
                f"{self.height} frame"
            )
        self._in_bytes.extend(data)
        self._beats_consumed += -(-len(data) // BYTES_PER_BEAT)
        consumed_cycles = self.timing.cycles_for_beats(self._beats_consumed)
        paced = self._started_at + consumed_cycles
        self._in_busy = paced if paced > now else now
        self._compute_ready_rows()
        return self._in_busy

    def _rows_received(self) -> int:
        return len(self._in_bytes) // self.width

    def _computable_rows(self) -> int:
        """Output rows computable from the input received so far.

        A 3x3 window needs one row of lookahead; the final row becomes
        computable only when the full frame has arrived.
        """
        received = self._rows_received()
        if received >= self.height:
            return self.height
        return max(0, received - 1)

    def _compute_ready_rows(self) -> None:
        target = self._computable_rows()
        if target <= self._rows_computed:
            return
        rows = self._rows_received()
        # compute on a replicated-edge slab so rows match the full-frame
        # golden output exactly
        r0 = self._rows_computed
        r1 = target
        lo = max(0, r0 - 1)
        hi = min(rows, r1 + 1)
        slab = bytes(self._in_bytes[lo * self.width : hi * self.width])
        row_payloads: List[bytes] | None = None
        if self._memo_enabled:
            memo_key = (self.golden, self.width, r0 - lo, r1 - lo, slab)
            row_payloads = _GOLDEN_MEMO.get(memo_key)
        if row_payloads is None:
            image_slab = np.frombuffer(slab, dtype=np.uint8).reshape(
                hi - lo, self.width)
            # The golden filter edge-replicates the slab borders;
            # extracted rows always have their true context rows inside
            # the slab, so the synthetic replication never leaks into
            # the output.
            filtered = self.golden(image_slab)
            out_rows = filtered[r0 - lo : r1 - lo]
            assert out_rows.shape[0] == r1 - r0
            row_payloads = [row.tobytes() for row in out_rows]
            if self._memo_enabled:
                if len(_GOLDEN_MEMO) >= _GOLDEN_MEMO_MAX_ENTRIES:
                    _GOLDEN_MEMO.clear()
                _GOLDEN_MEMO[memo_key] = row_payloads
        out_beats_per_row = self.width // BYTES_PER_BEAT
        for k, row in enumerate(row_payloads):
            row_index = r0 + k
            # the row leaves the pipeline startup_cycles after the
            # II-paced consumption of its last needed input beat
            needed_beats = min((row_index + 2), self.height) * out_beats_per_row
            base = self._started_at if self._started_at is not None else 0
            avail = (base + self.timing.startup_cycles
                     + self.timing.cycles_for_beats(needed_beats))
            self._out_rows.append((avail, row))
        self._rows_computed = r1
        if self._rows_computed == self.height:
            self.images_processed += 1

    # ------------------------------------------------------------------
    # output stream (to DMA S2MM through the switch)
    # ------------------------------------------------------------------
    def produce(self, nbytes: int, now: int) -> tuple[bytes, int]:
        if self._out_cursor >= len(self._out_rows):
            if self._rows_computed >= self.height:
                return b"", now  # end of frame
            # not ready: ask the DMA to retry once more input landed
            retry = now + 1
            if self._in_busy > retry:
                retry = self._in_busy
            return b"", retry
        chunks: list[bytes] = []
        t = now
        taken = 0
        while taken < nbytes and self._out_cursor < len(self._out_rows):
            avail, row = self._out_rows[self._out_cursor]
            take = min(nbytes - taken, len(row))
            if take < len(row):
                # split the row; keep the remainder at the cursor
                self._out_rows[self._out_cursor] = (avail, row[take:])
            else:
                self._out_cursor += 1
            chunks.append(row[:take])
            taken += take
            if avail > t:
                t = avail
        return b"".join(chunks), t
