"""Golden (reference) implementations of the case-study image filters.

The paper's case study (Sec. IV-D) uses three HLS-generated 3x3 filters
— Sobel, Median, Gaussian — on 512x512 8-bit grayscale images.  These
numpy implementations define the *functional* contract the streaming
RMs must match bit-exactly; they use edge replication at the borders.
"""

from __future__ import annotations

import numpy as np


def _pad_replicate(image: np.ndarray) -> np.ndarray:
    return np.pad(image, 1, mode="edge")


def _neighborhood_stack(image: np.ndarray) -> np.ndarray:
    """Stack the 9 shifted views of the 3x3 neighborhood: (9, H, W)."""
    padded = _pad_replicate(image)
    h, w = image.shape
    views = [
        padded[dy : dy + h, dx : dx + w]
        for dy in range(3)
        for dx in range(3)
    ]
    return np.stack(views)


def gaussian3x3(image: np.ndarray) -> np.ndarray:
    """3x3 Gaussian blur, kernel [[1,2,1],[2,4,2],[1,2,1]]/16, rounded."""
    image = np.asarray(image, dtype=np.uint8)
    stack = _neighborhood_stack(image).astype(np.uint32)
    weights = np.array([1, 2, 1, 2, 4, 2, 1, 2, 1], dtype=np.uint32)
    acc = np.tensordot(weights, stack, axes=1)
    return ((acc + 8) >> 4).astype(np.uint8)  # +8 rounds to nearest


def median3x3(image: np.ndarray) -> np.ndarray:
    """3x3 median filter."""
    image = np.asarray(image, dtype=np.uint8)
    stack = _neighborhood_stack(image)
    return np.median(stack, axis=0).astype(np.uint8)


def sobel3x3(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude |Gx| + |Gy|, saturated to 255."""
    image = np.asarray(image, dtype=np.uint8)
    stack = _neighborhood_stack(image).astype(np.int32)
    # stack order is (dy, dx) row-major: index = dy*3 + dx
    gx = (stack[2] + 2 * stack[5] + stack[8]) - (stack[0] + 2 * stack[3] + stack[6])
    gy = (stack[6] + 2 * stack[7] + stack[8]) - (stack[0] + 2 * stack[1] + stack[2])
    mag = np.abs(gx) + np.abs(gy)
    return np.clip(mag, 0, 255).astype(np.uint8)


def erode3x3(image: np.ndarray) -> np.ndarray:
    """3x3 grayscale erosion (morphological minimum filter).

    Not part of the paper's case study; included as a fourth RM to
    exercise the module registry beyond the published three.
    """
    image = np.asarray(image, dtype=np.uint8)
    return _neighborhood_stack(image).min(axis=0)


GOLDEN_FILTERS = {
    "gaussian": gaussian3x3,
    "median": median3x3,
    "sobel": sobel3x3,
    "erode": erode3x3,
}
