"""Synthetic test-image generation for the case study.

The paper processes 512x512 8-bit grayscale images; since the original
inputs are not published, these generators produce deterministic images
with enough structure (edges, gradients, noise) that the three filters
produce visibly different, non-trivial outputs.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SIZE = 512


def gradient_image(size: int = DEFAULT_SIZE) -> np.ndarray:
    """Diagonal gradient: smooth input, exercises rounding paths."""
    row = np.arange(size, dtype=np.uint32)
    image = (row[None, :] + row[:, None]) * 255 // (2 * (size - 1))
    return image.astype(np.uint8)


def checkerboard_image(size: int = DEFAULT_SIZE, tile: int = 16) -> np.ndarray:
    """High-contrast tiling: exercises edge responses."""
    row = (np.arange(size) // tile) % 2
    board = row[None, :] ^ row[:, None]
    return (board * 255).astype(np.uint8)


def noise_image(size: int = DEFAULT_SIZE, seed: int = 2021) -> np.ndarray:
    """Salt-and-pepper over mid-gray: the median filter's home turf."""
    rng = np.random.default_rng(seed)
    image = np.full((size, size), 128, dtype=np.uint8)
    coords = rng.integers(0, size, size=(2, size * size // 10))
    values = rng.choice([0, 255], size=coords.shape[1]).astype(np.uint8)
    image[coords[0], coords[1]] = values
    return image


def scene_image(size: int = DEFAULT_SIZE, seed: int = 7) -> np.ndarray:
    """Composite scene: gradients + shapes + noise (the default input)."""
    rng = np.random.default_rng(seed)
    image = gradient_image(size).astype(np.int32)
    # rectangles of varying intensity (scaled to the frame size)
    span = max(size // 8, 2)
    for _ in range(12):
        y0, x0 = rng.integers(0, max(size - span, 1), size=2)
        h, w = rng.integers(max(span // 4, 1), span, size=2)
        image[y0 : y0 + h, x0 : x0 + w] = int(rng.integers(0, 256))
    image = image + rng.integers(-8, 9, size=image.shape)
    return np.clip(image, 0, 255).astype(np.uint8)
