"""Shared low-level helpers: bit manipulation, CRC, units, logging."""

from repro.utils.bits import (
    MASK32,
    MASK64,
    bit,
    bits,
    extract,
    insert,
    sext,
    to_signed32,
    to_signed64,
    to_unsigned32,
    to_unsigned64,
)
from repro.utils.crc import crc32_xilinx, crc32_update
from repro.utils.units import (
    KIB,
    MIB,
    cycles_to_us,
    format_bytes,
    format_time_us,
    mb_per_s,
)

__all__ = [
    "MASK32",
    "MASK64",
    "bit",
    "bits",
    "extract",
    "insert",
    "sext",
    "to_signed32",
    "to_signed64",
    "to_unsigned32",
    "to_unsigned64",
    "crc32_xilinx",
    "crc32_update",
    "KIB",
    "MIB",
    "cycles_to_us",
    "format_bytes",
    "format_time_us",
    "mb_per_s",
]
