"""Bit-manipulation helpers used throughout the ISS and hardware models.

All helpers operate on plain Python ints.  Values are kept *unsigned*
(two's-complement wrapped into ``[0, 2**n)``) at module boundaries; the
``to_signed*`` helpers convert when arithmetic needs a signed view.
"""

from __future__ import annotations

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def bit(value: int, pos: int) -> int:
    """Return bit ``pos`` of ``value`` (0 or 1)."""
    return (value >> pos) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Return the bit-field ``value[hi:lo]`` inclusive (hi >= lo)."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


# ``extract`` is the conventional name in hardware-model code.
extract = bits


def insert(value: int, field: int, hi: int, lo: int) -> int:
    """Return ``value`` with bits ``[hi:lo]`` replaced by ``field``."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    width = hi - lo + 1
    mask = ((1 << width) - 1) << lo
    return (value & ~mask) | ((field << lo) & mask)


def sext(value: int, width: int) -> int:
    """Sign-extend a ``width``-bit value to a Python int (signed)."""
    sign = 1 << (width - 1)
    return (value & (sign - 1)) - (value & sign)


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    return sext(value & MASK32, 32)


def to_signed64(value: int) -> int:
    """Interpret the low 64 bits of ``value`` as a signed integer."""
    return sext(value & MASK64, 64)


def to_unsigned32(value: int) -> int:
    """Wrap a (possibly negative) int into an unsigned 32-bit value."""
    return value & MASK32


def to_unsigned64(value: int) -> int:
    """Wrap a (possibly negative) int into an unsigned 64-bit value."""
    return value & MASK64


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of 2)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of 2)."""
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """Return True when ``value`` is a multiple of ``alignment``."""
    return (value & (alignment - 1)) == 0


def bitrev32(value: int) -> int:
    """Reverse the bit order of a 32-bit word.

    Xilinx 7-series bitstream words are written to the ICAP with each
    byte bit-reversed; this helper implements the full-word variant used
    by the configuration-packet CRC.
    """
    value &= MASK32
    result = 0
    for _ in range(32):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def swap32_endianness(data: bytes) -> bytes:
    """Byte-swap every 32-bit word in ``data`` (len must be multiple of 4)."""
    if len(data) % 4:
        raise ValueError("data length must be a multiple of 4")
    out = bytearray(len(data))
    out[0::4] = data[3::4]
    out[1::4] = data[2::4]
    out[2::4] = data[1::4]
    out[3::4] = data[0::4]
    return bytes(out)
