"""Unit conversions and pretty-printing shared by the evaluation harness.

The paper reports throughput in decimal MB/s (650892 B / 156.45 ms =
4.16 MB/s), so ``mb_per_s`` uses 1 MB = 10**6 bytes.  Sizes of memories
and FIFOs use binary units (KiB/MiB).
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * 1024

MB = 1_000_000  # decimal megabyte, matches the paper's throughput figures


def mb_per_s(nbytes: int, seconds: float) -> float:
    """Throughput in decimal MB/s, the unit used throughout the paper."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return nbytes / seconds / MB


def cycles_to_us(cycles: int, freq_hz: float) -> float:
    """Convert a cycle count at ``freq_hz`` into microseconds."""
    return cycles / freq_hz * 1e6


def us_to_cycles(us: float, freq_hz: float) -> int:
    """Convert microseconds into a (rounded) cycle count at ``freq_hz``."""
    return round(us * 1e-6 * freq_hz)


def format_bytes(nbytes: int) -> str:
    """Human-readable binary size (e.g. ``"635.6 KiB"``)."""
    if nbytes < KIB:
        return f"{nbytes} B"
    if nbytes < MIB:
        return f"{nbytes / KIB:.1f} KiB"
    return f"{nbytes / MIB:.2f} MiB"


def format_time_us(us: float) -> str:
    """Human-readable time from a microsecond quantity."""
    if us < 1e3:
        return f"{us:.2f} us"
    if us < 1e6:
        return f"{us / 1e3:.2f} ms"
    return f"{us / 1e6:.3f} s"
