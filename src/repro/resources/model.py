"""Resource cost primitives."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ResourceModelError


@dataclass(frozen=True)
class ResourceCost:
    """FPGA resource vector: LUTs, flip-flops, BRAM36 tiles, DSP48s."""

    luts: int = 0
    ffs: int = 0
    brams: int = 0
    dsps: int = 0

    def __add__(self, other: "ResourceCost") -> "ResourceCost":
        return ResourceCost(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
            self.dsps + other.dsps,
        )

    def __sub__(self, other: "ResourceCost") -> "ResourceCost":
        return ResourceCost(
            self.luts - other.luts,
            self.ffs - other.ffs,
            self.brams - other.brams,
            self.dsps - other.dsps,
        )

    def scaled(self, factor: int) -> "ResourceCost":
        return ResourceCost(self.luts * factor, self.ffs * factor,
                            self.brams * factor, self.dsps * factor)

    def utilization_of(self, capacity: "ResourceCost") -> dict[str, float]:
        """Percent of a device capacity vector."""
        def pct(used: int, total: int) -> float:
            if total == 0:
                if used:
                    raise ResourceModelError("resource used but capacity is 0")
                return 0.0
            return 100.0 * used / total
        return {
            "luts": pct(self.luts, capacity.luts),
            "ffs": pct(self.ffs, capacity.ffs),
            "brams": pct(self.brams, capacity.brams),
            "dsps": pct(self.dsps, capacity.dsps),
        }

    def fits_in(self, capacity: "ResourceCost") -> bool:
        return (self.luts <= capacity.luts and self.ffs <= capacity.ffs
                and self.brams <= capacity.brams and self.dsps <= capacity.dsps)


@dataclass
class ResourceReport:
    """A named cost with optional sub-component breakdown."""

    name: str
    cost: ResourceCost = field(default_factory=ResourceCost)
    children: List["ResourceReport"] = field(default_factory=list)

    def add_child(self, child: "ResourceReport") -> "ResourceReport":
        self.children.append(child)
        return child

    @property
    def total(self) -> ResourceCost:
        total = self.cost
        for child in self.children:
            total = total + child.total
        return total

    def find(self, name: str) -> "ResourceReport":
        if self.name == name:
            return self
        for child in self.children:
            try:
                return child.find(name)
            except ResourceModelError:
                continue
        raise ResourceModelError(f"no component named {name!r}")

    def render(self, indent: int = 0) -> str:
        """Human-readable table (component, LUT, FF, BRAM, DSP)."""
        lines = []
        total = self.total
        lines.append(
            f"{'  ' * indent}{self.name:<28} "
            f"{total.luts:>7} {total.ffs:>7} {total.brams:>6} {total.dsps:>5}"
        )
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)
