"""Parametric FPGA resource model (LUT/FF/BRAM/DSP accounting).

We cannot re-run Vivado synthesis, so resource utilization is modelled
per component with parametric cost functions whose coefficients are
calibrated to the paper's reported reference configuration (Tables I,
II and III).  The *relative* behaviour stays meaningful: resizing the
HWICAP FIFO changes the BRAM count, widening the DMA burst grows its
LUT/FF cost, and component sums reproduce the paper's totals exactly.
"""

from repro.resources.model import ResourceCost, ResourceReport
from repro.resources.library import (
    KINTEX7_325T_CAPACITY,
    ariane_core,
    axi_dma,
    axi_hwicap_ip,
    full_soc_report,
    hwicap_axi_modules,
    hwicap_controller,
    peripherals_and_boot,
    reconfigurable_partition,
    rp_control_and_axi_modules,
    rvcap_controller,
    rvcap_controller_integrated,
)

__all__ = [
    "ResourceCost",
    "ResourceReport",
    "KINTEX7_325T_CAPACITY",
    "ariane_core",
    "axi_dma",
    "axi_hwicap_ip",
    "full_soc_report",
    "hwicap_axi_modules",
    "hwicap_controller",
    "peripherals_and_boot",
    "reconfigurable_partition",
    "rp_control_and_axi_modules",
    "rvcap_controller",
    "rvcap_controller_integrated",
]
