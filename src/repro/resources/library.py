"""Component cost library, calibrated to the paper's synthesis results.

Each function returns the cost of one hardware component, parametric in
the knobs a designer would actually turn (FIFO depth, burst length,
data width).  Coefficients are anchored so the *reference*
configuration (64-bit bus, burst 16, 1024-word HWICAP FIFO — exactly
the paper's) reproduces Tables I-III; see EXPERIMENTS.md "Resource
model calibration" for the anchor table, including the paper's own
Table I vs Table III discrepancy for the RV-CAP row (standalone
synthesis vs in-context implementation).
"""

from __future__ import annotations

from repro.errors import ResourceModelError
from repro.fpga.partition import ResourceBudget
from repro.resources.model import ResourceCost, ResourceReport

#: XC7K325T device capacity (Kintex-7 data sheet)
KINTEX7_325T_CAPACITY = ResourceCost(luts=203800, ffs=407600, brams=445, dsps=840)


def _bits(value: int) -> int:
    """ceil(log2(value)) for sizing address/counter logic."""
    if value <= 1:
        return 0
    return (value - 1).bit_length()


# ---------------------------------------------------------------------------
# interconnect pieces
# ---------------------------------------------------------------------------
def axi_width_converter(wide_bits: int = 64, narrow_bits: int = 32) -> ResourceCost:
    """AXI data width down-converter (packing/unpacking registers)."""
    if wide_bits % narrow_bits:
        raise ResourceModelError("wide width must divide by narrow width")
    ratio = wide_bits // narrow_bits
    return ResourceCost(luts=40 + 20 * ratio, ffs=2 * narrow_bits + 3 * wide_bits)


def axi4_to_lite_converter(data_bits: int = 32) -> ResourceCost:
    """AXI4 -> AXI4-Lite protocol converter (burst splitting, ID reflect)."""
    return ResourceCost(luts=70 + data_bits, ffs=120 + 2 * data_bits)


def axis_switch(ports: int = 2, data_bits: int = 64) -> ResourceCost:
    """AXI-Stream switch: 1-to-N mux with registered outputs."""
    return ResourceCost(luts=10 + 8 * ports, ffs=data_bits + 8 * ports)


def axis2icap(data_bits: int = 64) -> ResourceCost:
    """AXIS->ICAP converter: 64->2x32 gearbox + control."""
    return ResourceCost(luts=8 + data_bits // 2, ffs=2 * data_bits + 96)


def rp_control_interface() -> ResourceCost:
    """The RP control register file (decouple / select / RM control)."""
    return ResourceCost(luts=42, ffs=100)


def pr_decoupler(signals: int = 80) -> ResourceCost:
    """AXI isolation (decoupling) gates around one RP boundary."""
    return ResourceCost(luts=signals // 4, ffs=signals // 8)


# ---------------------------------------------------------------------------
# the RV-CAP controller (Table I rows)
# ---------------------------------------------------------------------------
def axi_dma(burst_beats: int = 16, data_bits: int = 64,
            buffer_words: int = 1024) -> ResourceCost:
    """Xilinx-style AXI DMA, both channels, direct register mode.

    "The hardware resource utilization is higher compared to [12, 13,
    15] because the DMA implementation used consumes large internal
    buffers" (Sec. IV-C) — the buffers dominate the BRAM count.
    """
    # store-and-forward buffer per channel: buffer_words x data_bits
    bram_bits = 2 * buffer_words * data_bits
    brams = max(1, -(-bram_bits // 36864)) + 2  # data FIFOs + cmd/status
    luts = 1561 + 14 * burst_beats + data_bits // 2 + 8 * _bits(buffer_words)
    ffs = 2412 + 28 * burst_beats + data_bits + 6 * _bits(buffer_words) * 2
    return ResourceCost(luts=luts, ffs=ffs, brams=brams)


def rp_control_and_axi_modules() -> ResourceCost:
    """Table I row: "RP cntrl. + AXI modules" of RV-CAP (420 / 909)."""
    return (
        axi_width_converter()            # 60 / 256
        + axi4_to_lite_converter()       # 102 / 184
        + axis_switch()                  # 26 / 80
        + axis2icap()                    # 40 / 137
        + rp_control_interface()         # 62 / 100
        + pr_decoupler(signals=520)      # 130 / 65 (wide stream boundary)
    )


def rvcap_controller(burst_beats: int = 16) -> ResourceCost:
    """RV-CAP total as synthesized standalone (Table I / Table II)."""
    return rp_control_and_axi_modules() + axi_dma(burst_beats=burst_beats)


def rvcap_controller_integrated() -> ResourceCost:
    """RV-CAP as implemented inside the full SoC (Table III row).

    Differs from the standalone figure (2317 LUT / 3953 FF) because
    in-context implementation flattens the converter boundary: +104
    LUTs of boundary glue are absorbed into the controller while 198
    FFs are optimized away across it.  Both numbers are the paper's
    own (Table I vs Table III).
    """
    return rvcap_controller() + ResourceCost(luts=104, ffs=-198)


# ---------------------------------------------------------------------------
# the AXI_HWICAP baseline (Table I rows)
# ---------------------------------------------------------------------------
def axi_hwicap_ip(fifo_words: int = 1024) -> ResourceCost:
    """Xilinx AXI_HWICAP with a parametric write FIFO.

    The paper resizes the stock 64-word FIFO to 1024 words; each 1024
    32-bit words is one 36 Kb BRAM, plus one for the read FIFO.
    """
    write_brams = max(1, -(-fifo_words * 32 // 36864))
    luts = 408 + 6 * _bits(fifo_words)
    ffs = 1156 + 8 * _bits(fifo_words)
    return ResourceCost(luts=luts, ffs=ffs, brams=write_brams + 1)


def hwicap_axi_modules(data_bits: int = 64) -> ResourceCost:
    """Table I row: "HWICAP AXI modules" (909 / 964).

    The HWICAP integration converts the full 64-bit CPU data path down
    to the IP's 32-bit AXI4-Lite slave port, which costs more than the
    RV-CAP control-only chain: the converter must handle the complete
    read/write data path with outstanding-transaction tracking.
    """
    return (
        axi_width_converter()                       # 60 / 256
        + axi4_to_lite_converter()                  # 102 / 184
        + ResourceCost(luts=597, ffs=459)           # data-path burst/resp logic
        + pr_decoupler(signals=520)                 # 130 / 65
    )


def hwicap_controller(fifo_words: int = 1024) -> ResourceCost:
    """AXI_HWICAP with RV64GC total (Table II row: 1377 / 2200 / 2)."""
    return hwicap_axi_modules() + axi_hwicap_ip(fifo_words=fifo_words)


# ---------------------------------------------------------------------------
# full-SoC components (Table III rows)
# ---------------------------------------------------------------------------
def ariane_core() -> ResourceCost:
    """CVA6 (Ariane) RV64GC application core (Table III)."""
    return ResourceCost(luts=39940, ffs=22500, brams=36, dsps=27)


def peripherals_and_boot() -> ResourceCost:
    """SoC peripherals + boot memory (Table III)."""
    return ResourceCost(luts=28832, ffs=31404, brams=20, dsps=0)


def reconfigurable_partition(budget: ResourceBudget | None = None) -> ResourceCost:
    """The RP's reserved resources (Table III: what the pblock fences)."""
    if budget is None:
        return ResourceCost(luts=3200, ffs=6400, brams=30, dsps=20)
    return ResourceCost(luts=budget.luts, ffs=budget.ffs,
                        brams=budget.brams, dsps=budget.dsps)


def full_soc_report() -> ResourceReport:
    """The complete Table III breakdown as a component tree."""
    report = ResourceReport("Full SoC")
    report.add_child(ResourceReport("Ariane Core", ariane_core()))
    report.add_child(ResourceReport("Peripherals & Boot Mem.",
                                    peripherals_and_boot()))
    report.add_child(ResourceReport("RV-CAP controller",
                                    rvcap_controller_integrated()))
    report.add_child(ResourceReport("RP", reconfigurable_partition()))
    return report
