"""AXI data-width converter (64-bit master side to 32-bit slave side).

The Ariane SoC bus is 64 bits wide while the Xilinx DMA control port,
the AXI_HWICAP and all RP control registers are 32-bit AXI4-Lite
slaves, so every controller integration in the paper inserts one of
these (Sec. III-B item 2 and Sec. III-C).  Functionally the converter
splits wide transfers into narrow beats; its timing cost is one extra
pipeline stage plus one additional cycle per extra narrow beat.
"""

from __future__ import annotations

from typing import Optional

from repro.axi.interface import AxiSlave, ReadPort, WritePort
from repro.axi.types import AxiResp, AxiResult
from repro.errors import DrcError


class AxiWidthConverter(AxiSlave):
    """Down-converter from ``wide_bytes`` to ``narrow_bytes`` data width."""

    def __init__(
        self,
        inner: AxiSlave,
        *,
        wide_bytes: int = 8,
        narrow_bytes: int = 4,
        stage_latency: int = 1,
    ) -> None:
        if narrow_bytes <= 0 or wide_bytes <= narrow_bytes:
            raise DrcError(
                f"width converter must narrow: {wide_bytes} B -> "
                f"{narrow_bytes} B is not a down-conversion"
            )
        if wide_bytes % narrow_bytes:
            raise DrcError(
                f"wide width ({wide_bytes} B) must be a multiple of the "
                f"narrow width ({narrow_bytes} B)"
            )
        self.inner = inner
        self.wide_bytes = wide_bytes
        self.narrow_bytes = narrow_bytes
        self.stage_latency = stage_latency

    def _split(self, addr: int, nbytes: int) -> list[tuple[int, int]]:
        """Split an access into naturally aligned narrow beats."""
        beats: list[tuple[int, int]] = []
        offset = 0
        while offset < nbytes:
            beat_addr = addr + offset
            span = min(self.narrow_bytes - beat_addr % self.narrow_bytes,
                       nbytes - offset)
            beats.append((beat_addr, span))
            offset += span
        return beats

    # Resolved ports exist only for the single-beat fast path, where
    # the converter is a pure +stage_latency delay on the request — so
    # it folds itself into ``lead`` and contributes no call frame.
    def resolve_read_port(self, addr: int, nbytes: int,
                          lead: int = 0) -> Optional[ReadPort]:
        if nbytes + addr % self.narrow_bytes > self.narrow_bytes:
            return None
        return self.inner.resolve_read_port(addr, nbytes,
                                            lead + self.stage_latency)

    def resolve_write_port(self, addr: int, nbytes: int,
                           lead: int = 0) -> Optional[WritePort]:
        if nbytes + addr % self.narrow_bytes > self.narrow_bytes:
            return None
        return self.inner.resolve_write_port(addr, nbytes,
                                             lead + self.stage_latency)

    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        time = now + self.stage_latency
        if nbytes + addr % self.narrow_bytes <= self.narrow_bytes:
            # single-beat fast path: the access already fits one
            # naturally aligned narrow beat, so forward it unsplit
            return self.inner.read(addr, nbytes, time)
        chunks: list[bytes] = []
        for beat_addr, span in self._split(addr, nbytes):
            result = self.inner.read(beat_addr, span, time)
            if not result.ok:
                return AxiResult(b"", result.complete_at, result.resp)
            chunks.append(result.data)
            time = result.complete_at
        return AxiResult(b"".join(chunks), time, AxiResp.OKAY)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        time = now + self.stage_latency
        if len(data) + addr % self.narrow_bytes <= self.narrow_bytes:
            return self.inner.write(addr, data, time)
        offset = 0
        for beat_addr, span in self._split(addr, len(data)):
            result = self.inner.write(beat_addr, data[offset : offset + span], time)
            if not result.ok:
                return AxiResult(b"", result.complete_at, result.resp)
            offset += span
            time = result.complete_at
        return AxiResult(b"", time, AxiResp.OKAY)
