"""Abstract AXI slave interface and a register-bank helper.

Every memory-mapped component implements :class:`AxiSlave`.  Addresses
passed to a slave are *local* (offset from the slave's base); the
crossbar performs the translation.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Tuple

from repro.axi.types import AxiResp, AxiResult, encode_word
from repro.errors import AlignmentError

#: resolved read port: ``f(now) -> (value, complete_at)``
ReadPort = Callable[[int], Tuple[int, int]]
#: resolved write port: ``f(value, now) -> complete_at`` (``value`` is
#: already masked to the access width)
WritePort = Callable[[int, int], int]


class AxiSlave(abc.ABC):
    """A memory-mapped AXI slave with transaction-level timing.

    ``read_latency`` / ``write_latency`` are the slave-internal service
    times in cycles (address accepted -> response valid); path latency
    is added by the interconnect components in front of the slave.
    """

    #: slave-internal service time for reads, in cycles
    read_latency: int = 1
    #: slave-internal service time for writes, in cycles
    write_latency: int = 1

    @abc.abstractmethod
    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        """Service a read of ``nbytes`` at local address ``addr``."""

    @abc.abstractmethod
    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        """Service a write of ``data`` at local address ``addr``."""

    # Burst transfers default to a single transaction of the full
    # payload; memory-like slaves override this with real burst timing.
    def read_burst(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self.read(addr, nbytes, now)

    def write_burst(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self.write(addr, data, now)

    # ------------------------------------------------------------------
    # resolved-port fast path
    # ------------------------------------------------------------------
    # An interconnect layer may pre-resolve a *single-beat, always-OKAY*
    # access into a flat closure so a hot master (the hart's MMIO path)
    # skips per-transaction routing and AxiResult allocation.  The
    # contract: the returned closure must produce exactly the timing and
    # side effects of the equivalent read()/write() call, sharing all
    # arbitration state (busy watermarks, counters) with the slow path.
    # A resolved port stays valid for the lifetime of the topology —
    # layers whose behaviour can change dynamically (isolators, fault
    # proxies) simply keep the default refusal.
    #
    # ``lead`` folds the pure request-side delays of the layers above
    # into the resolved port: a port resolved with ``lead=n`` must
    # behave exactly like the plain call issued at ``now + n``.  Pure
    # pipeline stages (the width converter) resolve to their inner
    # port with the stage folded into ``lead``, contributing zero call
    # frames to the composed path.
    def resolve_read_port(self, addr: int, nbytes: int,
                          lead: int = 0) -> Optional[ReadPort]:
        """Pre-resolve a read access, or ``None`` to use :meth:`read`."""
        return None

    def resolve_write_port(self, addr: int, nbytes: int,
                           lead: int = 0) -> Optional[WritePort]:
        """Pre-resolve a write access, or ``None`` to use :meth:`write`."""
        return None


ReadHook = Callable[[int], int]
WriteHook = Callable[[int], None]


class RegisterBank(AxiSlave):
    """A 32-bit register file with per-register read/write hooks.

    This is the workhorse behind every control interface in the design
    (DMA register file, HWICAP registers, RP control interface, SPI,
    UART...).  Registers are 32 bits wide and word-aligned, matching the
    AXI4-Lite interfaces of the corresponding Xilinx IP cores.
    """

    #: declared width contract: True means this register file models a
    #: 32-bit AXI4-Lite IP port and must sit behind an AXI4->Lite
    #: protocol converter on the 64-bit interconnect (the DRC enforces
    #: this); platform blocks like the CLINT/PLIC accept native 64-bit
    #: accesses and leave it False
    lite_only: bool = False

    def __init__(self, name: str, size: int = 0x1000) -> None:
        self.name = name
        self.size = size
        self._storage: Dict[int, int] = {}
        self._read_hooks: Dict[int, ReadHook] = {}
        self._write_hooks: Dict[int, WriteHook] = {}
        self._write_masks: Dict[int, int] = {}
        self._read_only: set[int] = set()

    # ------------------------------------------------------------------
    # configuration API used by subclasses
    # ------------------------------------------------------------------
    def define_register(
        self,
        offset: int,
        *,
        reset: int = 0,
        on_read: ReadHook | None = None,
        on_write: WriteHook | None = None,
        write_mask: int | None = None,
        read_only: bool = False,
    ) -> None:
        """Declare a register at byte ``offset`` with optional hooks.

        ``on_read`` replaces the stored value entirely (status
        registers); ``on_write`` observes the stored value after update
        (command registers).

        ``write_mask`` and ``read_only`` are *declarative* metadata for
        the static firmware verifier (:mod:`repro.verify`): bits outside
        ``write_mask`` are reserved (software must write them as zero),
        and ``read_only`` marks status registers whose writes the IP
        ignores entirely.  Neither changes runtime behaviour — the model
        keeps the permissive semantics of the RTL it mirrors, where the
        hook decides what a write means.
        """
        if offset % 4:
            raise AlignmentError(f"{self.name}: register offset {offset:#x} unaligned")
        self._storage[offset] = reset & 0xFFFF_FFFF
        if on_read is not None:
            self._read_hooks[offset] = on_read
        if on_write is not None:
            self._write_hooks[offset] = on_write
        if read_only:
            self._read_only.add(offset)
            self._write_masks[offset] = 0
        elif write_mask is not None:
            self._write_masks[offset] = write_mask & 0xFFFF_FFFF

    # ------------------------------------------------------------------
    # declarative introspection (consumed by repro.verify / repro.lint)
    # ------------------------------------------------------------------
    def register_offsets(self) -> Tuple[int, ...]:
        """Declared register offsets, ascending."""
        return tuple(sorted(self._storage))

    def has_register(self, offset: int) -> bool:
        return offset in self._storage

    def register_write_mask(self, offset: int) -> int:
        """Writable-bit mask for the register at ``offset``.

        Registers declared without ``write_mask`` are fully writable;
        ``read_only`` registers report mask 0.
        """
        return self._write_masks.get(offset, 0xFFFF_FFFF)

    def register_is_read_only(self, offset: int) -> bool:
        return offset in self._read_only

    def peek(self, offset: int) -> int:
        """Read stored value without invoking hooks (for tests/models)."""
        return self._storage.get(offset, 0)

    def poke(self, offset: int, value: int) -> None:
        """Set stored value without invoking hooks (for tests/models)."""
        self._storage[offset] = value & 0xFFFF_FFFF

    # ------------------------------------------------------------------
    # resolved-port fast path
    # ------------------------------------------------------------------
    # Only safe when the subclass did not override read()/write() (it
    # might wrap them with extra behaviour the closure would bypass).
    # Subclasses that *do* override but still want the fast path build
    # on _register_read_port/_register_write_port directly (AxiHwIcap).
    def resolve_read_port(self, addr: int, nbytes: int,
                          lead: int = 0) -> Optional[ReadPort]:
        if type(self).read is not RegisterBank.read:
            return None
        return self._register_read_port(addr, nbytes, lead)

    def resolve_write_port(self, addr: int, nbytes: int,
                           lead: int = 0) -> Optional[WritePort]:
        if type(self).write is not RegisterBank.write:
            return None
        return self._register_write_port(addr, nbytes, lead)

    # Port *parts* let an upstream fuser (repro.axi.fastpath) inline
    # the register access into its own closure, eliminating the
    # terminal call frame.  Returns (storage, hook, service_latency,
    # capture_now): ``capture_now`` is True when the slave wants its
    # ``_now`` attribute stamped with the access time before the
    # storage/hook side effects run (AxiHwIcap).  Same safety rule as
    # the resolved ports: only when read()/write() are not overridden.
    def read_port_parts(self, addr: int, nbytes: int) -> Optional[
        Tuple[Dict[int, int], Optional[ReadHook], int, bool]
    ]:
        if type(self).read is not RegisterBank.read:
            return None
        if nbytes != 4 or addr % 4 or addr >= self.size:
            return None
        return self._storage, self._read_hooks.get(addr), self.read_latency, False

    def write_port_parts(self, addr: int, nbytes: int) -> Optional[
        Tuple[Dict[int, int], Optional[WriteHook], int, bool]
    ]:
        if type(self).write is not RegisterBank.write:
            return None
        if nbytes != 4 or addr % 4 or addr >= self.size:
            return None
        return self._storage, self._write_hooks.get(addr), self.write_latency, False

    def _register_read_port(self, addr: int, nbytes: int,
                            lead: int = 0) -> Optional[ReadPort]:
        if nbytes != 4 or addr % 4 or addr >= self.size:
            return None
        storage = self._storage
        hook = self._read_hooks.get(addr)
        delay = lead + self.read_latency
        if hook is None:
            def port(now: int) -> Tuple[int, int]:
                value = storage.get(addr, 0) & 0xFFFF_FFFF
                storage[addr] = value
                return value, now + delay
        else:
            bound_hook = hook
            def port(now: int) -> Tuple[int, int]:
                value = bound_hook(addr) & 0xFFFF_FFFF
                storage[addr] = value
                return value, now + delay
        return port

    def _register_write_port(self, addr: int, nbytes: int,
                             lead: int = 0) -> Optional[WritePort]:
        if nbytes != 4 or addr % 4 or addr >= self.size:
            return None
        storage = self._storage
        hook = self._write_hooks.get(addr)
        delay = lead + self.write_latency
        if hook is None:
            def port(value: int, now: int) -> int:
                storage[addr] = value
                return now + delay
        else:
            bound_hook = hook
            def port(value: int, now: int) -> int:
                storage[addr] = value
                bound_hook(value)
                return now + delay
        return port

    # ------------------------------------------------------------------
    # AxiSlave implementation
    # ------------------------------------------------------------------
    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        complete = now + self.read_latency
        if nbytes == 4 and not addr % 4:
            # AXI4-Lite single-word fast path (the dominant access)
            if addr >= self.size:
                return AxiResult(b"", complete, AxiResp.SLVERR)
            hook = self._read_hooks.get(addr)
            value = hook(addr) if hook else self._storage.get(addr, 0)
            value &= 0xFFFF_FFFF
            self._storage[addr] = value
            return AxiResult(value.to_bytes(4, "little"), complete)
        if nbytes not in (4, 8) or addr % 4:
            return AxiResult(b"", complete, AxiResp.SLVERR)
        words = []
        for off in range(addr, addr + nbytes, 4):
            if off >= self.size:
                return AxiResult(b"", complete, AxiResp.SLVERR)
            hook = self._read_hooks.get(off)
            value = hook(off) if hook else self._storage.get(off, 0)
            self._storage[off] = value & 0xFFFF_FFFF
            words.append(encode_word(value, 4))
        return AxiResult(b"".join(words), complete)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        complete = now + self.write_latency
        if len(data) == 4 and not addr % 4:
            if addr >= self.size:
                return AxiResult(b"", complete, AxiResp.SLVERR)
            value = int.from_bytes(data, "little")
            self._storage[addr] = value
            hook = self._write_hooks.get(addr)
            if hook:
                hook(value)
            return AxiResult(b"", complete)
        if len(data) not in (4, 8) or addr % 4:
            return AxiResult(b"", complete, AxiResp.SLVERR)
        for i, off in enumerate(range(addr, addr + len(data), 4)):
            if off >= self.size:
                return AxiResult(b"", complete, AxiResp.SLVERR)
            value = int.from_bytes(data[4 * i : 4 * i + 4], "little")
            self._storage[off] = value
            hook = self._write_hooks.get(off)
            if hook:
                hook(value)
        return AxiResult(b"", complete)
