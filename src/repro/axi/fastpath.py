"""Cross-layer fusion of resolved MMIO ports.

The resolved-port protocol (:mod:`repro.axi.interface`) lets each
interconnect layer wrap its inner layer's port in one closure, so a
hart-to-register access still pays one Python call frame per layer:
crossbar -> protocol converter -> register bank.  For the hot MMIO
paths (the HWICAP write-FIFO stream is ~1 store per bitstream word)
those frames dominate the simulation cost.

This module flattens the *interconnect* layers of a chain into a single
closure.  It structurally walks the topology from a crossbar region
down through pure-delay width converters (which already fold into
``lead``) and serializing AXI4-Lite converters, then resolves the
terminal slave's own port and emits one closure that reproduces the
exact timing, arbitration-watermark, and counter side effects of the
nested chain.  Unknown layers or shapes refuse fusion (``None``) and
the caller falls back to the plain nested resolution, which itself
falls back to the fully timed path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.axi.crossbar import AxiCrossbar
from repro.axi.interface import AxiSlave, ReadPort, WritePort
from repro.axi.protocol_converter import Axi4ToLiteConverter
from repro.axi.width_converter import AxiWidthConverter


def _walk(xbar: AxiCrossbar, addr: int, nbytes: int) -> Optional[
    Tuple[object, AxiSlave, int, int, List[Tuple[Axi4ToLiteConverter, int]]]
]:
    """Descend from a crossbar region to the terminal slave.

    Returns ``(region, terminal, local_addr, lead, stages)`` where
    ``stages`` is the list of serializing converters passed through,
    each with the entry delay accumulated from the pure-delay layers
    directly above it.  ``None`` when the address does not decode or a
    layer/shape is not fusible.
    """
    region = xbar.memory_map.decode(addr)
    if region is None:
        return None
    local = addr - region.base
    lead = 0
    slave: AxiSlave = region.slave
    stages: List[Tuple[Axi4ToLiteConverter, int]] = []
    while True:
        if isinstance(slave, AxiWidthConverter):
            if nbytes + local % slave.narrow_bytes > slave.narrow_bytes:
                return None
            lead += slave.stage_latency
            slave = slave.inner
        elif isinstance(slave, Axi4ToLiteConverter):
            if nbytes > slave.lite_width:
                return None
            stages.append((slave, lead + slave.stage_latency))
            lead = 0
            slave = slave.inner
        else:
            return region, slave, local, lead, stages


def fuse_write_port(bus: object, addr: int,
                    nbytes: int) -> Optional[WritePort]:
    """A single-closure write port for a fusible chain, else ``None``."""
    if not isinstance(bus, AxiCrossbar):
        return None
    walked = _walk(bus, addr, nbytes)
    if walked is None:
        return None
    region, terminal, local, lead, stages = walked
    if len(stages) != 1:
        # 0 stages: the plain chain is already minimal; >1: rare shape,
        # not worth a specialized emitter — use the nested resolution
        return None
    proto, p_entry = stages[0]
    p_exit = proto.stage_latency
    xbar = bus
    busy = xbar._busy_until
    key = id(region)
    request = xbar.request_latency
    response = xbar.response_latency

    parts_fn = getattr(terminal, "write_port_parts", None)
    parts = parts_fn(local, nbytes) if parts_fn is not None else None
    if parts is not None:
        # fully fused: the terminal register action is inlined too
        storage, hook, t_lat, capture = parts
        delay = lead + t_lat

        def port(value: int, now: int) -> int:
            xbar.transactions += 1
            arrive = now + request
            start = busy.get(key, 0)
            if start < arrive:
                start = arrive
            if xbar.obs is not None:
                xbar._c_txn.inc()  # type: ignore[union-attr]
                if start > arrive:
                    xbar._wait_counter(region).inc(start - arrive)
            time = start + p_entry
            if proto._busy_until > time:
                time = proto._busy_until
            if capture:
                terminal._now = time  # type: ignore[attr-defined]
            storage[local] = value
            if hook is not None:
                hook(value)
            complete = time + delay
            proto._busy_until = complete
            complete += p_exit
            busy[key] = complete
            return complete + response

        return port

    inner = terminal.resolve_write_port(local, nbytes, lead)
    if inner is None:
        return None

    def nested_port(value: int, now: int) -> int:
        xbar.transactions += 1
        arrive = now + request
        start = busy.get(key, 0)
        if start < arrive:
            start = arrive
        if xbar.obs is not None:
            xbar._c_txn.inc()  # type: ignore[union-attr]
            if start > arrive:
                xbar._wait_counter(region).inc(start - arrive)
        time = start + p_entry
        if proto._busy_until > time:
            time = proto._busy_until
        complete = inner(value, time)
        proto._busy_until = complete
        complete += p_exit
        busy[key] = complete
        return complete + response

    return nested_port


def fuse_read_port(bus: object, addr: int,
                   nbytes: int) -> Optional[ReadPort]:
    """A single-closure read port for a fusible chain, else ``None``."""
    if not isinstance(bus, AxiCrossbar):
        return None
    walked = _walk(bus, addr, nbytes)
    if walked is None:
        return None
    region, terminal, local, lead, stages = walked
    if len(stages) != 1:
        return None
    proto, p_entry = stages[0]
    p_exit = proto.stage_latency
    xbar = bus
    busy = xbar._busy_until
    key = id(region)
    request = xbar.request_latency
    response = xbar.response_latency

    parts_fn = getattr(terminal, "read_port_parts", None)
    parts = parts_fn(local, nbytes) if parts_fn is not None else None
    if parts is not None:
        # fully fused: the terminal register action is inlined too
        storage, hook, t_lat, capture = parts
        delay = lead + t_lat

        def port(now: int) -> Tuple[int, int]:
            xbar.transactions += 1
            arrive = now + request
            start = busy.get(key, 0)
            if start < arrive:
                start = arrive
            if xbar.obs is not None:
                xbar._c_txn.inc()  # type: ignore[union-attr]
                if start > arrive:
                    xbar._wait_counter(region).inc(start - arrive)
            time = start + p_entry
            if proto._busy_until > time:
                time = proto._busy_until
            if capture:
                terminal._now = time  # type: ignore[attr-defined]
            if hook is not None:
                value = hook(local) & 0xFFFF_FFFF
            else:
                value = storage.get(local, 0) & 0xFFFF_FFFF
            storage[local] = value
            complete = time + delay
            proto._busy_until = complete
            complete += p_exit
            busy[key] = complete
            return value, complete + response

        return port

    inner = terminal.resolve_read_port(local, nbytes, lead)
    if inner is None:
        return None

    def nested_port(now: int) -> Tuple[int, int]:
        xbar.transactions += 1
        arrive = now + request
        start = busy.get(key, 0)
        if start < arrive:
            start = arrive
        if xbar.obs is not None:
            xbar._c_txn.inc()  # type: ignore[union-attr]
            if start > arrive:
                xbar._wait_counter(region).inc(start - arrive)
        time = start + p_entry
        if proto._busy_until > time:
            time = proto._busy_until
        value, complete = inner(time)
        proto._busy_until = complete
        complete += p_exit
        busy[key] = complete
        return value, complete + response

    return nested_port
