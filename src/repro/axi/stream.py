"""AXI-Stream channel models.

A stream *sink* accepts payload bytes with backpressure expressed in
time: :meth:`StreamSink.accept` returns the absolute cycle at which the
last byte was consumed.  A stream *source* produces bytes on demand.
The DMA moves data between memory-mapped space and these interfaces at
burst granularity, so a full 650 KB bitstream transfer costs thousands
— not hundreds of thousands — of simulation events.
"""

from __future__ import annotations

import abc
from collections import deque

from repro.errors import BusError


class StreamSink(abc.ABC):
    """Consumer side of an AXI-Stream link."""

    @abc.abstractmethod
    def accept(self, data: bytes, now: int) -> int:
        """Consume ``data`` starting at cycle ``now``.

        Returns the absolute cycle at which the final byte has been
        accepted (i.e. when TREADY would have been seen for the last
        beat).  Implementations keep their own ``busy_until`` so that
        back-to-back calls pipeline correctly.
        """


class StreamSource(abc.ABC):
    """Producer side of an AXI-Stream link."""

    @abc.abstractmethod
    def produce(self, nbytes: int, now: int) -> tuple[bytes, int]:
        """Produce up to ``nbytes`` starting at cycle ``now``.

        Returns ``(data, complete_at)``.  ``data`` may be shorter than
        requested when the source ends its packet (TLAST).
        """


class NullSink(StreamSink):
    """Accepts and discards everything at full rate (open switch port)."""

    def __init__(self, bytes_per_cycle: int = 8) -> None:
        self.bytes_per_cycle = bytes_per_cycle
        self.consumed = 0

    def accept(self, data: bytes, now: int) -> int:
        self.consumed += len(data)
        cycles = -(-len(data) // self.bytes_per_cycle)
        return now + cycles


class StreamFifo(StreamSink, StreamSource):
    """A bounded FIFO usable as both sink and source.

    ``depth`` is in bytes; overruns raise :class:`BusError` because a
    hardware FIFO would drop data — models are expected to respect the
    returned completion times instead of overfilling.
    """

    def __init__(self, name: str, depth: int, bytes_per_cycle: int = 8) -> None:
        if depth <= 0:
            raise ValueError("FIFO depth must be positive")
        self.name = name
        self.depth = depth
        self.bytes_per_cycle = bytes_per_cycle
        self._buffer: deque[int] = deque()
        self._busy_until = 0

    @property
    def level(self) -> int:
        """Bytes currently stored."""
        return len(self._buffer)

    @property
    def space(self) -> int:
        """Bytes of free space."""
        return self.depth - len(self._buffer)

    def accept(self, data: bytes, now: int) -> int:
        if len(data) > self.space:
            raise BusError(
                f"FIFO {self.name!r} overrun: {len(data)} B offered, "
                f"{self.space} B free"
            )
        self._buffer.extend(data)
        cycles = -(-len(data) // self.bytes_per_cycle)
        self._busy_until = max(self._busy_until, now) + cycles
        return self._busy_until

    def produce(self, nbytes: int, now: int) -> tuple[bytes, int]:
        take = min(nbytes, len(self._buffer))
        data = bytes(self._buffer.popleft() for _ in range(take))
        cycles = -(-take // self.bytes_per_cycle) if take else 0
        self._busy_until = max(self._busy_until, now) + cycles
        return data, self._busy_until

    def clear(self) -> None:
        self._buffer.clear()


class BufferSource(StreamSource):
    """A source that streams out a fixed byte buffer (test/model helper)."""

    def __init__(self, data: bytes, bytes_per_cycle: int = 8) -> None:
        self._data = memoryview(bytes(data))
        self._pos = 0
        self.bytes_per_cycle = bytes_per_cycle
        self._busy_until = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def produce(self, nbytes: int, now: int) -> tuple[bytes, int]:
        take = min(nbytes, self.remaining)
        data = bytes(self._data[self._pos : self._pos + take])
        self._pos += take
        cycles = -(-take // self.bytes_per_cycle) if take else 0
        self._busy_until = max(self._busy_until, now) + cycles
        return data, self._busy_until


class CaptureSink(StreamSink):
    """A sink that records everything it consumes (test/model helper)."""

    def __init__(self, bytes_per_cycle: int = 8) -> None:
        self.bytes_per_cycle = bytes_per_cycle
        self.data = bytearray()
        self._busy_until = 0

    def accept(self, data: bytes, now: int) -> int:
        self.data.extend(data)
        cycles = -(-len(data) // self.bytes_per_cycle)
        self._busy_until = max(self._busy_until, now) + cycles
        return self._busy_until
