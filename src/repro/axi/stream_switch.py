"""AXI-Stream switch: route the DMA stream to the ICAP or to the RM.

This is component (4) in the RV-CAP architecture (Fig. 2): a 1-to-N
switch on the DMA's MM2S output selecting *reconfiguration mode* (data
flows into the AXIS2ICAP converter) or *acceleration mode* (data flows
into the reconfigurable module), plus the mirrored N-to-1 return path
for the RM's output stream into the DMA's S2MM channel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.axi.stream import StreamSink, StreamSource
from repro.errors import BusError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.metrics import Counter


class AxiStreamSwitch(StreamSink):
    """Registered stream switch with named output ports.

    The select input comes from the RP control interface's
    ``select_ICAP`` register; switching while a transfer is in flight is
    a protocol violation in real hardware and raises here.
    """

    def __init__(self, name: str = "axis_switch", stage_latency: int = 1) -> None:
        self.name = name
        self.stage_latency = stage_latency
        self._sinks: Dict[str, StreamSink] = {}
        self._sources: Dict[str, StreamSource] = {}
        self._selected: str | None = None
        self._in_flight = False
        self.obs: Optional["Observability"] = None
        self._clock: Callable[[], int] = lambda: 0
        self._port_counters: Dict[str, "Counter"] = {}

    def attach_obs(self, obs: "Observability",
                   clock: Callable[[], int]) -> None:
        """Attach observability; ``clock`` supplies the current cycle.

        Register-write paths (``select``) carry no timestamp of their
        own, so the switch reads the simulator clock through the
        callable when stamping events.
        """
        self.obs = obs
        self._clock = clock
        self._port_counters = {}

    def _port_counter(self, port: str) -> "Counter":
        counter = self._port_counters.get(port)
        if counter is None:
            counter = self.obs.metrics.counter(  # type: ignore[union-attr]
                "axis_switch_bytes_total",
                "bytes routed through the AXIS switch, per output port",
                labels={"switch": self.name, "port": port})
            self._port_counters[port] = counter
        return counter

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach_sink(self, port: str, sink: StreamSink) -> None:
        self._sinks[port] = sink

    def attach_source(self, port: str, source: StreamSource) -> None:
        self._sources[port] = source

    @property
    def ports(self) -> list[str]:
        return sorted(set(self._sinks) | set(self._sources))

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def select(self, port: str) -> None:
        """Route subsequent traffic to ``port``."""
        if port not in self._sinks and port not in self._sources:
            raise BusError(f"switch {self.name!r}: unknown port {port!r}")
        if self._in_flight:
            raise BusError(
                f"switch {self.name!r}: cannot switch ports mid-transfer"
            )
        if self.obs is not None and port != self._selected:
            now = self._clock()
            self.obs.tracer.instant("axis.switch", "select", now, port=port)
            self.obs.tracer.signal(
                f"{self.name}_sel_icap", now, 1 if port == "icap" else 0)
        self._selected = port

    @property
    def selected(self) -> str | None:
        return self._selected

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def _selected_sink(self) -> StreamSink:
        if self._selected is None:
            raise BusError(f"switch {self.name!r}: no port selected")
        sink = self._sinks.get(self._selected)
        if sink is None:
            raise BusError(
                f"switch {self.name!r}: port {self._selected!r} has no sink"
            )
        return sink

    def accept(self, data: bytes, now: int) -> int:
        """Forward a burst to the selected sink (adds one stage)."""
        sink = self._selected_sink()
        if self.obs is not None:
            self._port_counter(self._selected).inc(len(data))  # type: ignore[arg-type]
        self._in_flight = True
        try:
            return sink.accept(data, now + self.stage_latency)
        finally:
            self._in_flight = False

    def resolve_accept(self) -> Optional[Callable[[bytes, int], int]]:
        """A fused accept closure for the currently selected route.

        Exactly :meth:`accept`'s behaviour (stage latency, per-port byte
        counter) with the switch frame and the downstream converter's
        frame collapsed into one closure.  Resolved per descriptor by
        the DMA engine, so a ``select`` between transfers simply yields
        a new closure; switching mid-transfer is a protocol violation
        regardless.  ``None`` when no sink is selected (the slow path
        raises the proper error).
        """
        if self._selected is None:
            return None
        sink = self._sinks.get(self._selected)
        if sink is None:
            return None
        inner_resolve = getattr(sink, "resolve_accept", None)
        inner = inner_resolve() if inner_resolve is not None else None
        if inner is None:
            inner = sink.accept
        stage = self.stage_latency
        counter = (self._port_counter(self._selected)
                   if self.obs is not None else None)
        if counter is None:
            def accept(data: bytes, now: int) -> int:
                return inner(data, now + stage)
        else:
            def accept(data: bytes, now: int) -> int:
                counter.value += len(data)
                return inner(data, now + stage)
        return accept

    def resolve_produce(self) -> Optional[Callable[[int, int], Tuple[bytes, int]]]:
        """A fused produce closure for the selected source, or ``None``."""
        if self._selected is None:
            return None
        source = self._sources.get(self._selected)
        if source is None:
            return None
        produce_inner = source.produce
        stage = self.stage_latency
        counter = (self._port_counter(self._selected)
                   if self.obs is not None else None)
        if counter is None:
            def produce(nbytes: int, now: int) -> tuple[bytes, int]:
                return produce_inner(nbytes, now + stage)
        else:
            def produce(nbytes: int, now: int) -> tuple[bytes, int]:
                data, done = produce_inner(nbytes, now + stage)
                if data:
                    counter.value += len(data)
                return data, done
        return produce

    def produce(self, nbytes: int, now: int) -> tuple[bytes, int]:
        """Pull a burst from the selected source (adds one stage)."""
        if self._selected is None:
            raise BusError(f"switch {self.name!r}: no port selected")
        source = self._sources.get(self._selected)
        if source is None:
            raise BusError(
                f"switch {self.name!r}: port {self._selected!r} has no source"
            )
        data, done = source.produce(nbytes, now + self.stage_latency)
        if self.obs is not None and data:
            self._port_counter(self._selected).inc(len(data))  # type: ignore[arg-type]
        return data, done
