"""PR decoupling (isolation) components.

During partial reconfiguration the logic inside the reconfigurable
partition drives undefined values, so AXI isolators are inserted between
each RP and the static region (Sec. III-A).  While *decoupled*:

* memory-mapped reads return zeros with OKAY (the safe idle pattern),
* memory-mapped writes are silently dropped,
* stream traffic is discarded / returns empty.

The ``decouple_accel()`` driver API toggles these gates through the RP
control interface.
"""

from __future__ import annotations

from repro.axi.interface import AxiSlave
from repro.axi.stream import StreamSink, StreamSource
from repro.axi.types import AxiResult


class AxiIsolator(AxiSlave):
    """Memory-mapped isolation gate in front of an RP's control port."""

    def __init__(self, inner: AxiSlave, name: str = "axi_isolator") -> None:
        self.inner = inner
        self.name = name
        self.decoupled = False
        self.blocked_accesses = 0

    def set_decouple(self, decoupled: bool) -> None:
        self.decoupled = bool(decoupled)

    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        if self.decoupled:
            self.blocked_accesses += 1
            return AxiResult(bytes(nbytes), now + 1)
        return self.inner.read(addr, nbytes, now)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        if self.decoupled:
            self.blocked_accesses += 1
            return AxiResult(b"", now + 1)
        return self.inner.write(addr, data, now)


class StreamIsolator(StreamSink, StreamSource):
    """Stream-side isolation gate between the DMA and the RM."""

    def __init__(
        self,
        sink: StreamSink | None = None,
        source: StreamSource | None = None,
        name: str = "stream_isolator",
    ) -> None:
        self.sink = sink
        self.source = source
        self.name = name
        self.decoupled = False
        self.dropped_bytes = 0

    def set_decouple(self, decoupled: bool) -> None:
        self.decoupled = bool(decoupled)

    def accept(self, data: bytes, now: int) -> int:
        if self.decoupled or self.sink is None:
            self.dropped_bytes += len(data)
            return now + 1
        return self.sink.accept(data, now)

    def produce(self, nbytes: int, now: int) -> tuple[bytes, int]:
        if self.decoupled or self.source is None:
            return b"", now + 1
        return self.source.produce(nbytes, now)
