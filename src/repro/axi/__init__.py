"""Transaction-level AXI4 / AXI4-Lite / AXI-Stream interconnect models.

Modelling approach
------------------
Rather than simulating the five AXI channels beat-by-beat, every
transfer is a single *transaction* carrying its payload plus timing
bookkeeping: a transaction issued at cycle ``now`` completes at an
absolute cycle computed from per-hop latencies, per-slave service times,
and a ``busy_until`` reservation on each shared resource (crossbar ports,
the DDR controller port).  This reproduces the two timing phenomena the
paper's results hinge on:

* a CPU store to a non-cacheable AXI4-Lite slave pays the full
  request + response round trip through every converter on the path
  (the reason AXI_HWICAP tops out near 8 MB/s), and
* back-to-back DMA bursts keep the DDR port and the ICAP sink
  pipelined, so throughput approaches one 32-bit word per cycle
  (the reason RV-CAP reaches 398.1 of 400 MB/s).
"""

from repro.axi.types import AxiResp, AxiResult, BurstType
from repro.axi.interface import AxiSlave, RegisterBank
from repro.axi.memory_map import MemoryMap, Region
from repro.axi.crossbar import AxiCrossbar
from repro.axi.width_converter import AxiWidthConverter
from repro.axi.protocol_converter import Axi4ToLiteConverter
from repro.axi.stream import (
    BufferSource,
    CaptureSink,
    NullSink,
    StreamFifo,
    StreamSink,
    StreamSource,
)
from repro.axi.stream_switch import AxiStreamSwitch
from repro.axi.isolator import AxiIsolator, StreamIsolator

__all__ = [
    "AxiResp",
    "AxiResult",
    "BurstType",
    "AxiSlave",
    "RegisterBank",
    "MemoryMap",
    "Region",
    "AxiCrossbar",
    "AxiWidthConverter",
    "Axi4ToLiteConverter",
    "StreamSink",
    "StreamSource",
    "StreamFifo",
    "BufferSource",
    "CaptureSink",
    "NullSink",
    "AxiStreamSwitch",
    "AxiIsolator",
    "StreamIsolator",
]
