"""AXI4 crossbar with address decoding, hop latency and port arbitration.

The reference SoC (Fig. 1/2 of the paper) contains two instances:

* the main 64-bit AXI-4 crossbar connecting the Ariane core to all
  peripherals, and
* the additional crossbar inserted between the RV-CAP DMA and the DDR
  controller so the DMA can fetch bitstream data without traversing the
  main bus.

Arbitration is modelled per *downstream region*: each region keeps a
``busy_until`` watermark, and a transaction arriving while the slave
port is busy waits for the previous one to drain.  That is exactly the
effect that makes the CPU's DMA-status polling reads slightly perturb —
but not stall — an in-flight DMA stream, and it serializes concurrent
MM2S/S2MM traffic to the single DDR port in acceleration mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.axi.interface import AxiSlave, ReadPort, WritePort
from repro.axi.memory_map import MemoryMap, Region
from repro.axi.types import AxiResp, AxiResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.metrics import Counter


class AxiCrossbar(AxiSlave):
    """An N-master/N-slave crossbar exposed as a single slave interface.

    ``request_latency`` / ``response_latency`` model the register slices
    on the address and response paths (one pipeline stage each in the
    open-source AXI components the SoC uses [22]).
    """

    def __init__(
        self,
        name: str,
        *,
        request_latency: int = 1,
        response_latency: int = 1,
    ) -> None:
        self.name = name
        self.request_latency = request_latency
        self.response_latency = response_latency
        self.memory_map = MemoryMap()
        self._busy_until: Dict[int, int] = {}
        self._last_region: Region | None = None  # MRU decode fast path
        self.transactions = 0
        self.decode_errors = 0
        self.obs: Optional["Observability"] = None
        self._wait_counters: Dict[int, "Counter"] = {}
        self._c_txn: Optional["Counter"] = None

    def attach_obs(self, obs: "Observability") -> None:
        self.obs = obs
        self._wait_counters = {}
        self._c_txn = obs.metrics.counter(
            "axi_transactions_total",
            "transactions routed through the crossbar",
            labels={"xbar": self.name})

    def _wait_counter(self, region: Region) -> "Counter":
        counter = self._wait_counters.get(id(region))
        if counter is None:
            counter = self.obs.metrics.counter(  # type: ignore[union-attr]
                "axi_wait_cycles_total",
                "arbitration wait at the downstream port (contention)",
                labels={"xbar": self.name, "region": region.name})
            self._wait_counters[id(region)] = counter
        return counter

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach(self, name: str, base: int, size: int, slave: AxiSlave) -> Region:
        """Map ``slave`` into [base, base+size) on this crossbar."""
        return self.memory_map.add(name, base, size, slave)

    def region_for(self, addr: int) -> Region | None:
        return self.memory_map.decode(addr)

    # ------------------------------------------------------------------
    # transaction routing
    # ------------------------------------------------------------------
    def _route(
        self, addr: int, now: int, burst: bool, is_read: bool,
        nbytes: int, data: bytes,
    ) -> AxiResult:
        # most traffic streams to one slave (DMA bursts, polling loops):
        # re-check the most recently decoded region before searching
        region = self._last_region
        if region is None or not (region.base <= addr < region.end):
            region = self.memory_map.decode(addr)
            if region is None:
                self.decode_errors += 1
                return AxiResult(b"", now + self.request_latency, AxiResp.DECERR)
            self._last_region = region
        self.transactions += 1
        key = id(region)
        arrive = now + self.request_latency
        start = max(arrive, self._busy_until.get(key, 0))
        if self.obs is not None:
            self._c_txn.value += 1  # type: ignore[union-attr]
            if start > arrive:
                self._wait_counter(region).value += start - arrive
        local = addr - region.base
        slave = region.slave
        if is_read:
            fn = slave.read_burst if burst else slave.read
            result = fn(local, nbytes, start)
        else:
            fn = slave.write_burst if burst else slave.write
            result = fn(local, data, start)
        # the slave port is occupied until its response is produced
        self._busy_until[key] = result.complete_at
        return AxiResult(
            result.data, result.complete_at + self.response_latency, result.resp
        )

    def resolve_read_port(self, addr: int, nbytes: int,
                          lead: int = 0) -> Optional[ReadPort]:
        region = self.memory_map.decode(addr)
        if region is None:
            return None
        inner = region.slave.resolve_read_port(addr - region.base, nbytes)
        if inner is None:
            return None
        busy = self._busy_until
        key = id(region)
        request = lead + self.request_latency
        response = self.response_latency

        def port(now: int) -> Tuple[int, int]:
            self.transactions += 1
            arrive = now + request
            start = busy.get(key, 0)
            if start < arrive:
                start = arrive
            if self.obs is not None:
                self._c_txn.value += 1  # type: ignore[union-attr]
                if start > arrive:
                    self._wait_counter(region).value += start - arrive
            value, complete = inner(start)
            busy[key] = complete
            return value, complete + response

        return port

    def resolve_write_port(self, addr: int, nbytes: int,
                           lead: int = 0) -> Optional[WritePort]:
        region = self.memory_map.decode(addr)
        if region is None:
            return None
        inner = region.slave.resolve_write_port(addr - region.base, nbytes)
        if inner is None:
            return None
        busy = self._busy_until
        key = id(region)
        request = lead + self.request_latency
        response = self.response_latency

        def port(value: int, now: int) -> int:
            self.transactions += 1
            arrive = now + request
            start = busy.get(key, 0)
            if start < arrive:
                start = arrive
            if self.obs is not None:
                self._c_txn.value += 1  # type: ignore[union-attr]
                if start > arrive:
                    self._wait_counter(region).value += start - arrive
            complete = inner(value, start)
            busy[key] = complete
            return complete + response

        return port

    def resolve_burst_read(self, lo: int, hi: int) -> Optional[
        "Callable[[int, int, int], Tuple[bytes, int]]"
    ]:
        """A fused data burst-read port over one region window.

        Returns ``f(addr, nbytes, now) -> (data, complete_at)``
        reproducing :meth:`read_burst` exactly (arbitration watermark,
        counters, slave row/port state) for bursts wholly inside
        [lo, hi).  The DMA descriptor engine resolves one per transfer,
        replacing the per-burst crossbar walk with a single closure.
        Requires the window to decode to one region whose slave itself
        resolves (``None`` otherwise — callers fall back to
        :meth:`read_burst`, which also covers fault-injection proxies).
        """
        region = self.memory_map.decode(lo)
        if region is None or hi > region.end or lo >= hi:
            return None
        resolve = getattr(region.slave, "resolve_burst_read", None)
        if resolve is None:
            return None
        inner = resolve(lo - region.base, hi - region.base)
        if inner is None:
            return None
        busy = self._busy_until
        key = id(region)
        base = region.base
        request = self.request_latency
        response = self.response_latency

        def port(addr: int, nbytes: int, now: int) -> Tuple[bytes, int]:
            self.transactions += 1
            arrive = now + request
            start = busy.get(key, 0)
            if start < arrive:
                start = arrive
            if self.obs is not None:
                self._c_txn.value += 1  # type: ignore[union-attr]
                if start > arrive:
                    self._wait_counter(region).value += start - arrive
            data, complete = inner(addr - base, nbytes, start)
            busy[key] = complete
            return data, complete + response

        return port

    def resolve_burst_write(self, lo: int, hi: int) -> Optional[
        "Callable[[int, bytes, int], int]"
    ]:
        """A fused data burst-write port over one region window.

        Mirror of :meth:`resolve_burst_read` for
        ``f(addr, data, now) -> complete_at``.
        """
        region = self.memory_map.decode(lo)
        if region is None or hi > region.end or lo >= hi:
            return None
        resolve = getattr(region.slave, "resolve_burst_write", None)
        if resolve is None:
            return None
        inner = resolve(lo - region.base, hi - region.base)
        if inner is None:
            return None
        busy = self._busy_until
        key = id(region)
        base = region.base
        request = self.request_latency
        response = self.response_latency

        def port(addr: int, data: bytes, now: int) -> int:
            self.transactions += 1
            arrive = now + request
            start = busy.get(key, 0)
            if start < arrive:
                start = arrive
            if self.obs is not None:
                self._c_txn.value += 1  # type: ignore[union-attr]
                if start > arrive:
                    self._wait_counter(region).value += start - arrive
            complete = inner(addr - base, data, start)
            busy[key] = complete
            return complete + response

        return port

    def resolve_fill_port(self, lo: int, hi: int, nbytes: int) -> Optional[
        "Callable[[int, int], int]"
    ]:
        """A timing-only burst-read port over one region window.

        Returns ``f(addr, now) -> complete_at`` reproducing
        :meth:`read_burst` timing (arbitration watermark, counters) for
        an ``nbytes`` burst at any address inside [lo, hi), without
        materializing the data.  Cache line fills are timing-only —
        architectural data moves through the hart's zero-time backdoor
        — so this removes the per-fill payload copy and routing frames.
        Requires the whole window to decode to one region whose slave
        exposes ``burst_read_timing``; ``None`` otherwise.
        """
        region = self.memory_map.decode(lo)
        if region is None or hi > region.end or lo >= hi:
            return None
        timing_fn = getattr(region.slave, "burst_read_timing", None)
        if timing_fn is None:
            return None
        busy = self._busy_until
        key = id(region)
        base = region.base
        request = self.request_latency
        response = self.response_latency

        def port(addr: int, now: int) -> int:
            self.transactions += 1
            arrive = now + request
            start = busy.get(key, 0)
            if start < arrive:
                start = arrive
            if self.obs is not None:
                self._c_txn.value += 1  # type: ignore[union-attr]
                if start > arrive:
                    self._wait_counter(region).value += start - arrive
            complete = int(timing_fn(addr - base, nbytes, start))
            busy[key] = complete
            return complete + response

        return port

    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self._route(addr, now, False, True, nbytes, b"")

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self._route(addr, now, False, False, 0, data)

    def read_burst(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self._route(addr, now, True, True, nbytes, b"")

    def write_burst(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self._route(addr, now, True, False, 0, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AxiCrossbar {self.name} regions={len(self.memory_map)}>"
