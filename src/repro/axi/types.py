"""AXI transaction primitives shared by all interconnect components."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AxiResp(enum.Enum):
    """AXI response codes (subset relevant to the model)."""

    OKAY = 0
    SLVERR = 2
    DECERR = 3


class BurstType(enum.Enum):
    """AXI burst types; the DMA uses INCR, register accesses FIXED."""

    FIXED = 0
    INCR = 1
    WRAP = 2


@dataclass
class AxiResult:
    """Outcome of one AXI transaction.

    Attributes
    ----------
    data:
        Read payload (``b""`` for writes).
    complete_at:
        Absolute simulation cycle at which the response (R last beat /
        B channel) arrives back at the master.
    resp:
        AXI response code.
    """

    data: bytes
    complete_at: int
    resp: AxiResp = AxiResp.OKAY

    @property
    def ok(self) -> bool:
        return self.resp is AxiResp.OKAY

    def latency_from(self, issue_cycle: int) -> int:
        """Round-trip latency as seen by the issuing master."""
        return self.complete_at - issue_cycle

    def value(self, nbytes: int | None = None) -> int:
        """Decode the payload as a little-endian unsigned integer."""
        data = self.data if nbytes is None else self.data[:nbytes]
        return int.from_bytes(data, "little")


def encode_word(value: int, nbytes: int) -> bytes:
    """Encode an unsigned integer as a little-endian payload."""
    return (value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes, "little")
