"""Address decoding for the AXI crossbar."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterator, List, Optional

from repro.axi.interface import AxiSlave
from repro.errors import BusError


@dataclass(frozen=True)
class Region:
    """A contiguous address window mapped to one slave."""

    name: str
    base: int
    size: int
    slave: AxiSlave

    #: interconnect data-bus width every window must be a multiple of
    BUS_BYTES: ClassVar[int] = 8

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise BusError(f"region {self.name!r} must have positive size")
        if self.base < 0:
            raise BusError(f"region {self.name!r} has negative base")
        if self.base % self.BUS_BYTES:
            raise BusError(
                f"region {self.name!r} base {self.base:#x} is not "
                f"{self.BUS_BYTES}-byte aligned"
            )
        if self.size % self.BUS_BYTES:
            raise BusError(
                f"region {self.name!r} size {self.size:#x} is not a "
                f"multiple of the {self.BUS_BYTES}-byte bus width"
            )

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass
class MemoryMap:
    """An ordered set of non-overlapping :class:`Region` windows."""

    regions: List[Region] = field(default_factory=list)

    def add(self, name: str, base: int, size: int, slave: AxiSlave) -> Region:
        region = Region(name, base, size, slave)
        for existing in self.regions:
            if existing.overlaps(region):
                raise BusError(
                    f"region {name!r} [{base:#x},{region.end:#x}) overlaps "
                    f"{existing.name!r} [{existing.base:#x},{existing.end:#x})"
                )
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        return region

    def decode(self, addr: int) -> Optional[Region]:
        """Find the region containing ``addr`` (binary search)."""
        lo, hi = 0, len(self.regions)
        while lo < hi:
            mid = (lo + hi) // 2
            region = self.regions[mid]
            if addr < region.base:
                hi = mid
            elif addr >= region.end:
                lo = mid + 1
            else:
                return region
        return None

    def region_named(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise BusError(f"no region named {name!r}")

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)
