"""AXI4 to AXI4-Lite protocol converter.

AXI4-Lite has no bursts and a single outstanding transaction; the
converter serializes anything wider and adds one register stage in each
direction.  Together with the width converter this is the "AXI modules"
block that costs 420 LUT / 909 FF in the RV-CAP integration and
909 LUT / 964 FF in the HWICAP one (Table I, derived from Table II).
"""

from __future__ import annotations

from typing import Optional

from repro.axi.interface import AxiSlave, ReadPort, WritePort
from repro.axi.types import AxiResult


class Axi4ToLiteConverter(AxiSlave):
    """Serializing AXI4 -> AXI4-Lite bridge."""

    def __init__(self, inner: AxiSlave, *, stage_latency: int = 1,
                 lite_width: int = 4) -> None:
        self.inner = inner
        self.stage_latency = stage_latency
        self.lite_width = lite_width
        self._busy_until = 0

    def _start(self, now: int) -> int:
        start = max(now + self.stage_latency, self._busy_until)
        return start

    # Resolved ports cover the single-beat case; the serialization
    # state (_busy_until) is read and written through the instance so
    # fast- and slow-path transactions stay mutually ordered.
    def resolve_read_port(self, addr: int, nbytes: int,
                          lead: int = 0) -> Optional[ReadPort]:
        if nbytes > self.lite_width:
            return None
        inner = self.inner.resolve_read_port(addr, nbytes)
        if inner is None:
            return None
        entry = lead + self.stage_latency
        latency = self.stage_latency

        def port(now: int) -> tuple[int, int]:
            time = now + entry
            if self._busy_until > time:
                time = self._busy_until
            value, complete = inner(time)
            self._busy_until = complete
            return value, complete + latency

        return port

    def resolve_write_port(self, addr: int, nbytes: int,
                           lead: int = 0) -> Optional[WritePort]:
        if nbytes > self.lite_width:
            return None
        inner = self.inner.resolve_write_port(addr, nbytes)
        if inner is None:
            return None
        entry = lead + self.stage_latency
        latency = self.stage_latency

        def port(value: int, now: int) -> int:
            time = now + entry
            if self._busy_until > time:
                time = self._busy_until
            complete = inner(value, time)
            self._busy_until = complete
            return complete + latency

        return port

    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        time = self._start(now)
        if nbytes <= self.lite_width:
            # single AXI4-Lite beat: no serialization loop needed
            result = self.inner.read(addr, nbytes, time)
            self._busy_until = result.complete_at
            return AxiResult(result.data,
                             result.complete_at + self.stage_latency,
                             result.resp)
        chunks: list[bytes] = []
        offset = 0
        while offset < nbytes:
            span = min(self.lite_width, nbytes - offset)
            result = self.inner.read(addr + offset, span, time)
            if not result.ok:
                self._busy_until = result.complete_at
                return AxiResult(b"", result.complete_at + self.stage_latency,
                                 result.resp)
            chunks.append(result.data)
            time = result.complete_at
            offset += span
        self._busy_until = time
        return AxiResult(b"".join(chunks), time + self.stage_latency)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        time = self._start(now)
        if len(data) <= self.lite_width:
            result = self.inner.write(addr, data, time)
            self._busy_until = result.complete_at
            return AxiResult(b"", result.complete_at + self.stage_latency,
                             result.resp)
        offset = 0
        while offset < len(data):
            span = min(self.lite_width, len(data) - offset)
            result = self.inner.write(addr + offset, data[offset:offset + span], time)
            if not result.ok:
                self._busy_until = result.complete_at
                return AxiResult(b"", result.complete_at + self.stage_latency,
                                 result.resp)
            time = result.complete_at
            offset += span
        self._busy_until = time
        return AxiResult(b"", time + self.stage_latency)
