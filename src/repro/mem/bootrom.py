"""On-chip boot memory.

The paper's SoC stores application binaries (compiled with the RISC-V
GNU toolchain) in on-chip boot memory on the FPGA (Sec. III-A); the
Ariane core fetches instructions from here.  On-chip block RAM responds
in a single cycle, so instruction fetches never touch the DDR model.
"""

from __future__ import annotations

from repro.axi.interface import AxiSlave
from repro.axi.types import AxiResp, AxiResult


class BootRom(AxiSlave):
    """Read-only on-chip memory preloaded with a firmware image."""

    read_latency = 1

    def __init__(self, size: int = 192 * 1024, name: str = "bootrom") -> None:
        self.name = name
        self._data = bytearray(size)
        self.image_size = 0

    @property
    def size(self) -> int:
        return len(self._data)

    def load_image(self, data: bytes, offset: int = 0) -> None:
        """Program the ROM contents (design-time operation, zero cost)."""
        if offset + len(data) > len(self._data):
            raise ValueError(
                f"image of {len(data)} B at +{offset:#x} exceeds ROM size "
                f"{len(self._data)}"
            )
        self._data[offset : offset + len(data)] = data
        self.image_size = max(self.image_size, offset + len(data))

    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        if addr + nbytes > len(self._data):
            return AxiResult(b"", now + self.read_latency, AxiResp.SLVERR)
        return AxiResult(bytes(self._data[addr : addr + nbytes]),
                         now + self.read_latency)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        # ROM: writes are rejected like a read-only BRAM port.
        return AxiResult(b"", now + 1, AxiResp.SLVERR)

    def fetch(self, addr: int, nbytes: int) -> bytes:
        """Zero-time fetch path used by the CPU front end (always hits)."""
        return bytes(self._data[addr : addr + nbytes])
