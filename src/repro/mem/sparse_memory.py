"""Page-granular sparse byte store.

Backing storage for DDR (256 MiB address window) without allocating the
full window.  Pages are ``bytearray`` blocks allocated on first touch;
bulk reads/writes are sliced per page so multi-kilobyte DMA bursts cost
O(pages), not O(bytes) of Python-level work.  Accesses that stay inside
one allocated page — every cache-line fill and almost every DMA burst —
take a fast path that slices the page directly, and the word helpers
use pre-compiled :mod:`struct` codecs so aligned 2/4/8-byte accesses
never materialize an intermediate ``bytes`` object.
"""

from __future__ import annotations

import struct
from typing import Dict

_WORD_CODECS = {
    1: struct.Struct("<B"),
    2: struct.Struct("<H"),
    4: struct.Struct("<I"),
    8: struct.Struct("<Q"),
}


class SparseMemory:
    """A sparse, zero-initialized byte-addressable store."""

    def __init__(self, size: int, page_bits: int = 12) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.page_bits = page_bits
        self.page_size = 1 << page_bits
        self._pages: Dict[int, bytearray] = {}

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    def _check_range(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise IndexError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside memory of "
                f"size {self.size:#x}"
            )

    def load(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``addr``."""
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            self._check_range(addr, nbytes)
        offset = addr & (self.page_size - 1)
        if offset + nbytes <= self.page_size:
            # whole range inside one page: no zero-fill scratch buffer
            page = self._pages.get(addr >> self.page_bits)
            if page is None:
                return bytes(nbytes)
            return bytes(page[offset : offset + nbytes])
        out = bytearray(nbytes)
        pos = 0
        while pos < nbytes:
            page_idx = (addr + pos) >> self.page_bits
            offset = (addr + pos) & (self.page_size - 1)
            span = min(self.page_size - offset, nbytes - pos)
            page = self._pages.get(page_idx)
            if page is not None:
                out[pos : pos + span] = page[offset : offset + span]
            pos += span
        return bytes(out)

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr``."""
        nbytes = len(data)
        self._check_range(addr, nbytes)
        pos = 0
        while pos < nbytes:
            page_idx = (addr + pos) >> self.page_bits
            offset = (addr + pos) & (self.page_size - 1)
            span = min(self.page_size - offset, nbytes - pos)
            page = self._pages.get(page_idx)
            if page is None:
                page = bytearray(self.page_size)
                self._pages[page_idx] = page
            page[offset : offset + span] = data[pos : pos + span]
            pos += span

    # word-granular convenience helpers used by the ISS hot path ------
    def load_word(self, addr: int, nbytes: int) -> int:
        """Little-endian unsigned integer load."""
        codec = _WORD_CODECS.get(nbytes)
        offset = addr & (self.page_size - 1)
        if codec is not None and offset + nbytes <= self.page_size:
            if addr < 0 or addr + nbytes > self.size:
                self._check_range(addr, nbytes)
            page = self._pages.get(addr >> self.page_bits)
            if page is None:
                return 0
            return codec.unpack_from(page, offset)[0]
        return int.from_bytes(self.load(addr, nbytes), "little")

    def store_word(self, addr: int, value: int, nbytes: int) -> None:
        """Little-endian unsigned integer store."""
        codec = _WORD_CODECS.get(nbytes)
        offset = addr & (self.page_size - 1)
        if codec is not None and offset + nbytes <= self.page_size:
            if addr < 0 or addr + nbytes > self.size:
                self._check_range(addr, nbytes)
            page_idx = addr >> self.page_bits
            page = self._pages.get(page_idx)
            if page is None:
                page = bytearray(self.page_size)
                self._pages[page_idx] = page
            codec.pack_into(page, offset, value & ((1 << (8 * nbytes)) - 1))
            return
        self.store(addr, (value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes, "little"))

    def fill(self, addr: int, nbytes: int, byte: int = 0) -> None:
        """Fill a range with a constant byte."""
        self.store(addr, bytes([byte]) * nbytes)
