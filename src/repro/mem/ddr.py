"""DDR memory controller with a multi-port, row-aware timing model.

Timing model
------------
The Genesys2 board pairs the Kintex-7 with DDR3 behind a Xilinx MIG
controller.  Each 100 MHz AXI port sustains one 64-bit beat per cycle
once a burst is streaming; the MIG core itself runs the memory at a
multiple of that, so two ports (the CPU/main-bus port and the RV-CAP
crossbar port of Sec. III-B) can stream concurrently.  Costs visible at
an AXI port boundary:

* ``first_access_latency`` — full request latency for a random access
  (activate + CAS + controller pipeline), paid by CPU cache-line fills
  and by the first burst of a DMA transfer;
* ``row_miss_penalty`` — precharge/activate when a *sequential* stream
  crosses an open-row boundary (``row_bytes``);
* one cycle per 64-bit beat of payload, per port;
* the shared device: ``device_beats_per_cycle`` (default 2) caps the
  summed throughput of all ports.

With the defaults a single sequential DMA stream sustains 8 B/cycle
less a 0.05 % row-crossing tax — which lets RV-CAP feed the ICAP at
its 400 MB/s ceiling — while the concurrent MM2S+S2MM streams of
acceleration mode each get a full port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.axi.interface import AxiSlave
from repro.axi.types import AxiResp, AxiResult
from repro.mem.sparse_memory import SparseMemory


@dataclass(frozen=True)
class DdrTiming:
    """Calibratable DDR controller timing parameters (cycles)."""

    first_access_latency: int = 24
    row_miss_penalty: int = 4
    row_bytes: int = 8192
    bytes_per_beat: int = 8
    #: internal MIG bandwidth in 64-bit beats per AXI-clock cycle.
    #: DDR3-1600 x 32 bit on the Genesys2 gives ~6.4 GB/s = 8 beats per
    #: 100 MHz cycle — four times what the two 800 MB/s AXI ports can
    #: demand together, so by default (0 = uncapped) the device core is
    #: never the bottleneck.  Set a positive value to model
    #: bandwidth-starved configurations (ablation).
    device_beats_per_cycle: int = 0

    def __post_init__(self) -> None:
        if self.bytes_per_beat <= 0 or self.row_bytes <= 0:
            raise ValueError("DDR geometry must be positive")
        if self.device_beats_per_cycle < 0:
            raise ValueError("device bandwidth must be >= 0 (0 = uncapped)")


class _PortState:
    __slots__ = ("busy_until", "next_seq_addr", "open_row")

    def __init__(self) -> None:
        self.busy_until = 0
        self.next_seq_addr: int | None = None
        self.open_row: int | None = None


class DdrController(AxiSlave):
    """The SoC's external memory, fronted by MIG-like timing.

    The controller object itself acts as port ``"default"``; additional
    independent ports are created with :meth:`port`.
    """

    def __init__(
        self,
        size: int,
        timing: DdrTiming | None = None,
        name: str = "ddr",
    ) -> None:
        self.name = name
        self.timing = timing or DdrTiming()
        self.memory = SparseMemory(size)
        self._ports: Dict[str, _PortState] = {"default": _PortState()}
        self._device_free = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def size(self) -> int:
        return self.memory.size

    def port(self, name: str) -> "DdrPort":
        """An independent AXI port into this controller."""
        if name not in self._ports:
            self._ports[name] = _PortState()
        return DdrPort(self, name)

    # ------------------------------------------------------------------
    # timing core
    # ------------------------------------------------------------------
    def _service(self, port_name: str, addr: int, nbytes: int, now: int) -> int:
        t = self.timing
        port = self._ports[port_name]
        beats = -(-nbytes // t.bytes_per_beat) if nbytes else 1
        start = max(now, port.busy_until)
        if t.device_beats_per_cycle:
            start = max(start, self._device_free)
        cost = beats
        first_row = addr // t.row_bytes
        last_row = (addr + max(nbytes - 1, 0)) // t.row_bytes
        if addr != port.next_seq_addr:
            cost += t.first_access_latency
        else:
            # a sequential stream pays precharge/activate once per row
            # it enters (relative to the port's open row)
            new_rows = last_row - first_row
            if port.open_row is not None and first_row != port.open_row:
                new_rows += 1
            cost += new_rows * t.row_miss_penalty
        port.open_row = last_row
        port.next_seq_addr = addr + nbytes
        port.busy_until = start + cost
        if t.device_beats_per_cycle:
            self._device_free = start + -(-beats // t.device_beats_per_cycle)
        return port.busy_until

    # ------------------------------------------------------------------
    # AxiSlave implementation (the "default" port)
    # ------------------------------------------------------------------
    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self._read(("default"), addr, nbytes, now)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self._write("default", addr, data, now)

    def read_burst(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self._read("default", addr, nbytes, now)

    def write_burst(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self._write("default", addr, data, now)

    def burst_read_timing(self, addr: int, nbytes: int, now: int) -> int:
        """Timing of a default-port read burst without the payload.

        Exactly :meth:`read_burst`'s completion time and side effects
        (row/port state, ``bytes_read``) minus the data copy; used by
        the crossbar's resolved fill port for timing-only cache line
        fills.
        """
        if addr + nbytes > self.size:
            return now + 1
        complete = self._service("default", addr, nbytes, now)
        self.bytes_read += nbytes
        return complete

    def _read(self, port: str, addr: int, nbytes: int, now: int) -> AxiResult:
        if addr + nbytes > self.size:
            return AxiResult(b"", now + 1, AxiResp.SLVERR)
        complete = self._service(port, addr, nbytes, now)
        self.bytes_read += nbytes
        return AxiResult(self.memory.load(addr, nbytes), complete)

    def _write(self, port: str, addr: int, data: bytes, now: int) -> AxiResult:
        if addr + len(data) > self.size:
            return AxiResult(b"", now + 1, AxiResp.SLVERR)
        complete = self._service(port, addr, len(data), now)
        self.memory.store(addr, data)
        self.bytes_written += len(data)
        return AxiResult(b"", complete)

    # ------------------------------------------------------------------
    # zero-time backdoor for loaders and checkers
    # ------------------------------------------------------------------
    def load_image(self, addr: int, data: bytes) -> None:
        """Deposit data without consuming simulation time."""
        self.memory.store(addr, data)

    def dump(self, addr: int, nbytes: int) -> bytes:
        """Inspect memory without consuming simulation time."""
        return self.memory.load(addr, nbytes)


class DdrPort(AxiSlave):
    """A named, independently arbitrated port of a :class:`DdrController`."""

    def __init__(self, controller: DdrController, name: str) -> None:
        self.controller = controller
        self.port_name = name

    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self.controller._read(self.port_name, addr, nbytes, now)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self.controller._write(self.port_name, addr, data, now)

    def read_burst(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self.controller._read(self.port_name, addr, nbytes, now)

    def write_burst(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self.controller._write(self.port_name, addr, data, now)
