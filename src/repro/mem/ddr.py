"""DDR memory controller with a multi-port, row-aware timing model.

Timing model
------------
The Genesys2 board pairs the Kintex-7 with DDR3 behind a Xilinx MIG
controller.  Each 100 MHz AXI port sustains one 64-bit beat per cycle
once a burst is streaming; the MIG core itself runs the memory at a
multiple of that, so two ports (the CPU/main-bus port and the RV-CAP
crossbar port of Sec. III-B) can stream concurrently.  Costs visible at
an AXI port boundary:

* ``first_access_latency`` — full request latency for a random access
  (activate + CAS + controller pipeline), paid by CPU cache-line fills
  and by the first burst of a DMA transfer;
* ``row_miss_penalty`` — precharge/activate when a *sequential* stream
  crosses an open-row boundary (``row_bytes``);
* one cycle per 64-bit beat of payload, per port;
* the shared device: ``device_beats_per_cycle`` (default 2) caps the
  summed throughput of all ports.

With the defaults a single sequential DMA stream sustains 8 B/cycle
less a 0.05 % row-crossing tax — which lets RV-CAP feed the ICAP at
its 400 MB/s ceiling — while the concurrent MM2S+S2MM streams of
acceleration mode each get a full port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.axi.interface import AxiSlave
from repro.axi.types import AxiResp, AxiResult
from repro.mem.sparse_memory import SparseMemory


@dataclass(frozen=True)
class DdrTiming:
    """Calibratable DDR controller timing parameters (cycles)."""

    first_access_latency: int = 24
    row_miss_penalty: int = 4
    row_bytes: int = 8192
    bytes_per_beat: int = 8
    #: internal MIG bandwidth in 64-bit beats per AXI-clock cycle.
    #: DDR3-1600 x 32 bit on the Genesys2 gives ~6.4 GB/s = 8 beats per
    #: 100 MHz cycle — four times what the two 800 MB/s AXI ports can
    #: demand together, so by default (0 = uncapped) the device core is
    #: never the bottleneck.  Set a positive value to model
    #: bandwidth-starved configurations (ablation).
    device_beats_per_cycle: int = 0

    def __post_init__(self) -> None:
        if self.bytes_per_beat <= 0 or self.row_bytes <= 0:
            raise ValueError("DDR geometry must be positive")
        if self.device_beats_per_cycle < 0:
            raise ValueError("device bandwidth must be >= 0 (0 = uncapped)")


class _PortState:
    __slots__ = ("busy_until", "next_seq_addr", "open_row")

    def __init__(self) -> None:
        self.busy_until = 0
        self.next_seq_addr: int | None = None
        self.open_row: int | None = None


class DdrController(AxiSlave):
    """The SoC's external memory, fronted by MIG-like timing.

    The controller object itself acts as port ``"default"``; additional
    independent ports are created with :meth:`port`.
    """

    def __init__(
        self,
        size: int,
        timing: DdrTiming | None = None,
        name: str = "ddr",
    ) -> None:
        self.name = name
        self.timing = timing or DdrTiming()
        # timing scalars unpacked once — _service runs per burst and the
        # frozen-dataclass attribute reads add up (timing is fixed at
        # construction; nothing reassigns it)
        t = self.timing
        self._bytes_per_beat = t.bytes_per_beat
        self._row_bytes = t.row_bytes
        self._first_access_latency = t.first_access_latency
        self._row_miss_penalty = t.row_miss_penalty
        self._device_beats_per_cycle = t.device_beats_per_cycle
        self.memory = SparseMemory(size)
        self._ports: Dict[str, _PortState] = {"default": _PortState()}
        self._device_free = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: precharge/activate command pairs issued (power-model input)
        self.row_activates = 0

    @property
    def size(self) -> int:
        return self.memory.size

    def port(self, name: str) -> "DdrPort":
        """An independent AXI port into this controller."""
        if name not in self._ports:
            self._ports[name] = _PortState()
        return DdrPort(self, name)

    # ------------------------------------------------------------------
    # timing core
    # ------------------------------------------------------------------
    def _service(self, port_name: str, addr: int, nbytes: int, now: int) -> int:
        port = self._ports[port_name]
        beats = -(-nbytes // self._bytes_per_beat) if nbytes else 1
        start = port.busy_until
        if now > start:
            start = now
        device_bw = self._device_beats_per_cycle
        if device_bw and self._device_free > start:
            start = self._device_free
        cost = beats
        row_bytes = self._row_bytes
        first_row = addr // row_bytes
        last_row = (addr + nbytes - 1) // row_bytes if nbytes else first_row
        if addr != port.next_seq_addr:
            cost += self._first_access_latency
            self.row_activates += 1 + (last_row - first_row)
        else:
            # a sequential stream pays precharge/activate once per row
            # it enters (relative to the port's open row)
            new_rows = last_row - first_row
            if port.open_row is not None and first_row != port.open_row:
                new_rows += 1
            cost += new_rows * self._row_miss_penalty
            self.row_activates += new_rows
        port.open_row = last_row
        port.next_seq_addr = addr + nbytes
        port.busy_until = start + cost
        if device_bw:
            self._device_free = start + -(-beats // device_bw)
        return port.busy_until

    # ------------------------------------------------------------------
    # AxiSlave implementation (the "default" port)
    # ------------------------------------------------------------------
    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self._read(("default"), addr, nbytes, now)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self._write("default", addr, data, now)

    def read_burst(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self._read("default", addr, nbytes, now)

    def write_burst(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self._write("default", addr, data, now)

    def burst_read_timing(self, addr: int, nbytes: int, now: int) -> int:
        """Timing of a default-port read burst without the payload.

        Exactly :meth:`read_burst`'s completion time and side effects
        (row/port state, ``bytes_read``) minus the data copy; used by
        the crossbar's resolved fill port for timing-only cache line
        fills.
        """
        if addr + nbytes > self.size:
            return now + 1
        complete = self._service("default", addr, nbytes, now)
        self.bytes_read += nbytes
        return complete

    def _read(self, port: str, addr: int, nbytes: int, now: int) -> AxiResult:
        if addr + nbytes > self.size:
            return AxiResult(b"", now + 1, AxiResp.SLVERR)
        complete = self._service(port, addr, nbytes, now)
        self.bytes_read += nbytes
        return AxiResult(self.memory.load(addr, nbytes), complete)

    def _write(self, port: str, addr: int, data: bytes, now: int) -> AxiResult:
        if addr + len(data) > self.size:
            return AxiResult(b"", now + 1, AxiResp.SLVERR)
        complete = self._service(port, addr, len(data), now)
        self.memory.store(addr, data)
        self.bytes_written += len(data)
        return AxiResult(b"", complete)

    # ------------------------------------------------------------------
    # zero-time backdoor for loaders and checkers
    # ------------------------------------------------------------------
    def load_image(self, addr: int, data: bytes) -> None:
        """Deposit data without consuming simulation time."""
        self.memory.store(addr, data)

    def dump(self, addr: int, nbytes: int) -> bytes:
        """Inspect memory without consuming simulation time."""
        return self.memory.load(addr, nbytes)


class DdrPort(AxiSlave):
    """A named, independently arbitrated port of a :class:`DdrController`."""

    def __init__(self, controller: DdrController, name: str) -> None:
        self.controller = controller
        self.port_name = name

    def resolve_burst_read(self, lo: int, hi: int) -> Optional[Callable[[int, int, int], Tuple[bytes, int]]]:
        """A fused burst-read closure for bursts inside [lo, hi).

        ``f(addr, nbytes, now) -> (data, complete_at)`` with exactly
        :meth:`read_burst`'s timing and side effects, minus the
        ``AxiResult`` wrapper; ``None`` when the window exceeds the
        memory (those accesses must surface SLVERR on the slow path).
        """
        ctrl = self.controller
        if lo >= hi or hi > ctrl.size:
            return None
        service = ctrl._service
        load = ctrl.memory.load
        port_name = self.port_name

        def read(addr: int, nbytes: int, now: int):
            complete = service(port_name, addr, nbytes, now)
            ctrl.bytes_read += nbytes
            return load(addr, nbytes), complete

        return read

    def resolve_burst_write(self, lo: int, hi: int) -> Optional[Callable[[int, bytes, int], int]]:
        """Mirror of :meth:`resolve_burst_read` for writes."""
        ctrl = self.controller
        if lo >= hi or hi > ctrl.size:
            return None
        service = ctrl._service
        store = ctrl.memory.store
        port_name = self.port_name

        def write(addr: int, data: bytes, now: int) -> int:
            complete = service(port_name, addr, len(data), now)
            store(addr, data)
            ctrl.bytes_written += len(data)
            return complete

        return write

    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self.controller._read(self.port_name, addr, nbytes, now)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self.controller._write(self.port_name, addr, data, now)

    def read_burst(self, addr: int, nbytes: int, now: int) -> AxiResult:
        return self.controller._read(self.port_name, addr, nbytes, now)

    def write_burst(self, addr: int, data: bytes, now: int) -> AxiResult:
        return self.controller._write(self.port_name, addr, data, now)
