"""General-purpose on-chip block RAM (single-cycle scratchpad)."""

from __future__ import annotations

from repro.axi.interface import AxiSlave
from repro.axi.types import AxiResp, AxiResult


class Bram(AxiSlave):
    """A simple dual-port BRAM scratchpad with one-cycle access."""

    read_latency = 1
    write_latency = 1

    def __init__(self, size: int, name: str = "bram") -> None:
        if size <= 0:
            raise ValueError("BRAM size must be positive")
        self.name = name
        self._data = bytearray(size)

    @property
    def size(self) -> int:
        return len(self._data)

    def read(self, addr: int, nbytes: int, now: int) -> AxiResult:
        if addr + nbytes > len(self._data):
            return AxiResult(b"", now + self.read_latency, AxiResp.SLVERR)
        return AxiResult(bytes(self._data[addr : addr + nbytes]),
                         now + self.read_latency)

    def write(self, addr: int, data: bytes, now: int) -> AxiResult:
        if addr + len(data) > len(self._data):
            return AxiResult(b"", now + self.write_latency, AxiResp.SLVERR)
        self._data[addr : addr + len(data)] = data
        return AxiResult(b"", now + self.write_latency)
