"""Memory subsystem: sparse backing store, DDR timing model, ROM/BRAM."""

from repro.mem.sparse_memory import SparseMemory
from repro.mem.ddr import DdrController, DdrTiming
from repro.mem.bootrom import BootRom
from repro.mem.bram import Bram

__all__ = ["SparseMemory", "DdrController", "DdrTiming", "BootRom", "Bram"]
