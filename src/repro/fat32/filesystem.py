"""The FAT32 filesystem facade: mount, read, write, overwrite, delete.

Only the root directory is supported (the paper's driver keeps all
partial bitstreams in one directory); everything else — chains, 8.3
entries, multi-FAT mirroring, cluster allocation — is fully
implemented.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FilesystemError
from repro.fat32.blockdev import BLOCK_SIZE, BlockDevice
from repro.fat32.directory import (
    ATTR_ARCHIVE,
    DirEntry,
    ENTRY_END,
    ENTRY_FREE,
    ENTRY_SIZE,
    encode_83,
)
from repro.fat32.fat import FatTable
from repro.fat32.layout import BiosParameterBlock
from repro.fat32.mbr import PARTITION_TYPE_FAT32_LBA, parse_mbr


class _PartitionView(BlockDevice):
    """A block device window over one partition."""

    def __init__(self, device: BlockDevice, first_lba: int, num_sectors: int):
        self.device = device
        self.first_lba = first_lba
        self._num = num_sectors

    @property
    def num_blocks(self) -> int:
        return self._num

    def read_block(self, lba: int) -> bytes:
        self._check(lba)
        return self.device.read_block(self.first_lba + lba)

    def write_block(self, lba: int, data: bytes) -> None:
        self._check(lba)
        self.device.write_block(self.first_lba + lba, data)


class Fat32FileSystem:
    """A mounted FAT32 volume."""

    def __init__(self, partition: BlockDevice, bpb: BiosParameterBlock) -> None:
        self.partition = partition
        self.bpb = bpb
        self.fat = FatTable(partition, bpb)

    # ------------------------------------------------------------------
    # mounting
    # ------------------------------------------------------------------
    @classmethod
    def mount(cls, device: BlockDevice,
              partition_index: int = 0) -> "Fat32FileSystem":
        """Mount the FAT32 partition found via the MBR."""
        partitions = parse_mbr(device)
        fat32 = [p for p in partitions
                 if p.partition_type == PARTITION_TYPE_FAT32_LBA]
        if partition_index >= len(fat32):
            raise FilesystemError(
                f"no FAT32 partition at index {partition_index} "
                f"({len(fat32)} found)"
            )
        entry = fat32[partition_index]
        view = _PartitionView(device, entry.first_lba, entry.num_sectors)
        bpb = BiosParameterBlock.unpack(view.read_block(0))
        return cls(view, bpb)

    @classmethod
    def mount_partitionless(cls, partition: BlockDevice) -> "Fat32FileSystem":
        """Mount a volume that starts at sector 0 (no MBR)."""
        bpb = BiosParameterBlock.unpack(partition.read_block(0))
        return cls(partition, bpb)

    # ------------------------------------------------------------------
    # cluster I/O
    # ------------------------------------------------------------------
    def _read_cluster(self, cluster: int) -> bytes:
        first = self.bpb.cluster_to_sector(cluster)
        return b"".join(
            self.partition.read_block(first + i)
            for i in range(self.bpb.sectors_per_cluster)
        )

    def _write_cluster(self, cluster: int, data: bytes) -> None:
        if len(data) > self.bpb.cluster_bytes:
            raise FilesystemError("cluster write overflow")
        data = data.ljust(self.bpb.cluster_bytes, b"\x00")
        first = self.bpb.cluster_to_sector(cluster)
        for i in range(self.bpb.sectors_per_cluster):
            self.partition.write_block(
                first + i, data[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
            )

    # ------------------------------------------------------------------
    # directories (root + subdirectories, "/"-separated paths)
    # ------------------------------------------------------------------
    def _iter_dir_slots(self, dir_cluster: int):
        """Yield (cluster, offset, raw 32-byte record) for every slot."""
        for cluster in self.fat.chain(dir_cluster):
            data = self._read_cluster(cluster)
            for offset in range(0, self.bpb.cluster_bytes, ENTRY_SIZE):
                yield cluster, offset, data[offset : offset + ENTRY_SIZE]

    def _resolve_dir(self, path: str) -> int:
        """Walk a directory path; returns its first cluster."""
        cluster = self.bpb.root_cluster
        for part in [p for p in path.split("/") if p and p != "."]:
            found = self._find_slot_in(cluster, part)
            if found is None or not found[2].is_directory:
                raise FilesystemError(f"no such directory: {part!r} in {path!r}")
            cluster = found[2].first_cluster
        return cluster

    def _split_path(self, path: str) -> tuple[int, str]:
        """Split ``DIR/SUB/NAME.EXT`` into (dir_cluster, leaf name)."""
        path = path.strip("/")
        if "/" in path:
            parent, _, leaf = path.rpartition("/")
            return self._resolve_dir(parent), leaf
        return self.bpb.root_cluster, path

    def list_dir(self, path: str = "") -> List[DirEntry]:
        """Live file entries in ``path`` (default: the root directory)."""
        entries = []
        for _cluster, _offset, raw in self._iter_dir_slots(
                self._resolve_dir(path)):
            first = raw[0]
            if first == ENTRY_END:
                return entries
            if first == ENTRY_FREE:
                continue
            entry = DirEntry.unpack(raw)
            if not entry.is_directory:
                entries.append(entry)
        return entries

    def list_subdirs(self, path: str = "") -> List[DirEntry]:
        """Subdirectory entries in ``path`` (excluding '.' and '..')."""
        entries = []
        for _cluster, _offset, raw in self._iter_dir_slots(
                self._resolve_dir(path)):
            first = raw[0]
            if first == ENTRY_END:
                return entries
            if first == ENTRY_FREE:
                continue
            entry = DirEntry.unpack(raw)
            if entry.is_directory and entry.name not in (".", ".."):
                entries.append(entry)
        return entries

    def _find_slot_in(self, dir_cluster: int,
                      name: str) -> Optional[tuple[int, int, DirEntry]]:
        target = encode_83(name)
        for cluster, offset, raw in self._iter_dir_slots(dir_cluster):
            first = raw[0]
            if first == ENTRY_END:
                return None
            if first == ENTRY_FREE:
                continue
            if raw[:11] == target:
                return cluster, offset, DirEntry.unpack(raw)
        return None

    def _find_slot(self, path: str) -> Optional[tuple[int, int, DirEntry]]:
        dir_cluster, leaf = self._split_path(path)
        return self._find_slot_in(dir_cluster, leaf)

    def _find_free_slot(self, dir_cluster: int) -> tuple[int, int]:
        last_cluster = dir_cluster
        for cluster, offset, raw in self._iter_dir_slots(dir_cluster):
            last_cluster = cluster
            if raw[0] in (ENTRY_END, ENTRY_FREE):
                return cluster, offset
        # directory full: extend it by one cluster
        new_cluster = self.fat.allocate(1, link_after=last_cluster)
        self._write_cluster(new_cluster, b"")
        return new_cluster, 0

    def mkdir(self, path: str) -> None:
        """Create a subdirectory (parents must exist)."""
        dir_cluster, leaf = self._split_path(path)
        if self._find_slot_in(dir_cluster, leaf) is not None:
            raise FilesystemError(f"{path!r} already exists")
        new_cluster = self.fat.allocate(1)
        # seed '.' and '..' entries, then terminate
        from repro.fat32.directory import ATTR_DIRECTORY
        dot = DirEntry(".", attributes=ATTR_DIRECTORY,
                       first_cluster=new_cluster)
        dotdot_cluster = (0 if dir_cluster == self.bpb.root_cluster
                          else dir_cluster)
        dotdot = DirEntry("..", attributes=ATTR_DIRECTORY,
                          first_cluster=dotdot_cluster)
        payload = dot.pack() + dotdot.pack()
        self._write_cluster(new_cluster, payload)
        cluster, offset = self._find_free_slot(dir_cluster)
        self._store_entry(cluster, offset, DirEntry(
            leaf, attributes=ATTR_DIRECTORY, first_cluster=new_cluster))

    def _store_entry(self, cluster: int, offset: int, entry: DirEntry) -> None:
        data = bytearray(self._read_cluster(cluster))
        data[offset : offset + ENTRY_SIZE] = entry.pack()
        self._write_cluster(cluster, bytes(data))

    # ------------------------------------------------------------------
    # file operations
    # ------------------------------------------------------------------
    def exists(self, name: str) -> bool:
        try:
            return self._find_slot(name) is not None
        except FilesystemError:
            return False

    def file_size(self, name: str) -> int:
        found = self._find_slot(name)
        if found is None:
            raise FilesystemError(f"no such file: {name}")
        return found[2].size

    def read_file(self, name: str) -> bytes:
        """Read a whole file."""
        found = self._find_slot(name)
        if found is None:
            raise FilesystemError(f"no such file: {name}")
        entry = found[2]
        if entry.size == 0:
            return b""
        chunks = []
        remaining = entry.size
        for cluster in self.fat.chain(entry.first_cluster):
            take = min(remaining, self.bpb.cluster_bytes)
            chunks.append(self._read_cluster(cluster)[:take])
            remaining -= take
            if remaining == 0:
                break
        if remaining:
            raise FilesystemError(
                f"file {name}: chain ended {remaining} bytes early"
            )
        return b"".join(chunks)

    def write_file(self, name: str, data: bytes) -> None:
        """Create or overwrite a file with ``data``."""
        found = self._find_slot(name)
        if found is not None:
            # overwrite: free the old chain, reuse the slot
            cluster, offset, entry = found
            if entry.first_cluster >= 2:
                self.fat.free_chain(entry.first_cluster)
        else:
            dir_cluster, _leaf = self._split_path(name)
            cluster, offset = self._find_free_slot(dir_cluster)
        first_cluster = 0
        if data:
            count = -(-len(data) // self.bpb.cluster_bytes)
            first_cluster = self.fat.allocate(count)
            for i, data_cluster in enumerate(self.fat.chain(first_cluster)):
                chunk = data[i * self.bpb.cluster_bytes : (i + 1) * self.bpb.cluster_bytes]
                self._write_cluster(data_cluster, chunk)
        leaf = name.strip("/").rpartition("/")[2]
        entry = DirEntry(name=leaf, attributes=ATTR_ARCHIVE,
                         first_cluster=first_cluster, size=len(data))
        self._store_entry(cluster, offset, entry)

    def delete_file(self, name: str) -> None:
        """Remove a file and free its clusters."""
        found = self._find_slot(name)
        if found is None:
            raise FilesystemError(f"no such file: {name}")
        cluster, offset, entry = found
        if entry.first_cluster >= 2:
            self.fat.free_chain(entry.first_cluster)
        data = bytearray(self._read_cluster(cluster))
        data[offset] = ENTRY_FREE
        self._write_cluster(cluster, bytes(data))

    # ------------------------------------------------------------------
    # info
    # ------------------------------------------------------------------
    def free_bytes(self) -> int:
        return self.fat.count_free() * self.bpb.cluster_bytes
