"""Minimal FAT32 filesystem (the paper's SD-card I/O layer, Sec. III-A).

"A set of file I/O software functions based on the minimalist
implementation of the file allocation table (FAT32) have been developed
to support file reading, writing, and overwriting."  This package is
that layer: MBR partition parsing, volume formatting, FAT chain
management, 8.3 directory entries, and a filesystem facade with read /
write / overwrite / delete, all over an abstract 512-byte block device
(RAM image or the simulated SD card behind SPI).
"""

from repro.fat32.blockdev import BlockDevice, RamBlockDevice, SdBackdoorBlockDevice
from repro.fat32.mbr import PartitionEntry, parse_mbr, write_mbr
from repro.fat32.layout import BiosParameterBlock
from repro.fat32.mkfs import format_volume, make_disk_image
from repro.fat32.filesystem import Fat32FileSystem

__all__ = [
    "BlockDevice",
    "RamBlockDevice",
    "SdBackdoorBlockDevice",
    "PartitionEntry",
    "parse_mbr",
    "write_mbr",
    "BiosParameterBlock",
    "format_volume",
    "make_disk_image",
    "Fat32FileSystem",
]
