"""Master boot record / partition table handling."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.errors import FilesystemError
from repro.fat32.blockdev import BLOCK_SIZE, BlockDevice

MBR_SIGNATURE = 0xAA55
PARTITION_TYPE_FAT32_LBA = 0x0C
_ENTRY_OFFSET = 446
_ENTRY_SIZE = 16


@dataclass(frozen=True)
class PartitionEntry:
    """One primary partition slot."""

    boot_flag: int
    partition_type: int
    first_lba: int
    num_sectors: int

    @property
    def present(self) -> bool:
        return self.partition_type != 0 and self.num_sectors > 0

    def pack(self) -> bytes:
        # CHS fields are zeroed: every consumer here is LBA-only
        return struct.pack(
            "<B3sB3sII",
            self.boot_flag,
            b"\x00\x00\x00",
            self.partition_type,
            b"\x00\x00\x00",
            self.first_lba,
            self.num_sectors,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "PartitionEntry":
        boot_flag, _chs0, ptype, _chs1, first, count = struct.unpack(
            "<B3sB3sII", raw
        )
        return cls(boot_flag, ptype, first, count)


def write_mbr(device: BlockDevice, partitions: List[PartitionEntry]) -> None:
    """Write sector 0 with up to four partition entries."""
    if len(partitions) > 4:
        raise FilesystemError("at most 4 primary partitions")
    sector = bytearray(BLOCK_SIZE)
    for i, entry in enumerate(partitions):
        off = _ENTRY_OFFSET + i * _ENTRY_SIZE
        sector[off : off + _ENTRY_SIZE] = entry.pack()
    sector[510:512] = MBR_SIGNATURE.to_bytes(2, "little")
    device.write_block(0, bytes(sector))


def parse_mbr(device: BlockDevice) -> List[PartitionEntry]:
    """Read and validate sector 0; returns the present partitions."""
    sector = device.read_block(0)
    if int.from_bytes(sector[510:512], "little") != MBR_SIGNATURE:
        raise FilesystemError("missing MBR signature 0x55AA")
    entries = []
    for i in range(4):
        off = _ENTRY_OFFSET + i * _ENTRY_SIZE
        entry = PartitionEntry.unpack(sector[off : off + _ENTRY_SIZE])
        if entry.present:
            entries.append(entry)
    return entries
