"""FAT32 on-disk structures: BPB and FSInfo."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import FilesystemError
from repro.fat32.blockdev import BLOCK_SIZE

END_OF_CHAIN = 0x0FFF_FFF8  # any value >= this terminates a chain
FREE_CLUSTER = 0x0000_0000
BAD_CLUSTER = 0x0FFF_FFF7
CLUSTER_MASK = 0x0FFF_FFFF


@dataclass(frozen=True)
class BiosParameterBlock:
    """The subset of the FAT32 BPB the driver uses."""

    bytes_per_sector: int = BLOCK_SIZE
    sectors_per_cluster: int = 8
    reserved_sectors: int = 32
    num_fats: int = 2
    total_sectors: int = 0
    sectors_per_fat: int = 0
    root_cluster: int = 2
    fsinfo_sector: int = 1
    volume_label: bytes = b"RVCAP      "

    def __post_init__(self) -> None:
        if self.bytes_per_sector != BLOCK_SIZE:
            raise FilesystemError("only 512-byte sectors are supported")
        if self.sectors_per_cluster & (self.sectors_per_cluster - 1):
            raise FilesystemError("sectors per cluster must be a power of 2")

    @property
    def cluster_bytes(self) -> int:
        return self.bytes_per_sector * self.sectors_per_cluster

    @property
    def fat_start_sector(self) -> int:
        return self.reserved_sectors

    @property
    def data_start_sector(self) -> int:
        return self.reserved_sectors + self.num_fats * self.sectors_per_fat

    @property
    def num_clusters(self) -> int:
        data_sectors = self.total_sectors - self.data_start_sector
        return data_sectors // self.sectors_per_cluster

    def cluster_to_sector(self, cluster: int) -> int:
        if cluster < 2:
            raise FilesystemError(f"cluster {cluster} below first data cluster")
        return self.data_start_sector + (cluster - 2) * self.sectors_per_cluster

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        sector = bytearray(BLOCK_SIZE)
        sector[0:3] = b"\xEB\x58\x90"            # jump
        sector[3:11] = b"MSWIN4.1"               # OEM
        struct.pack_into("<H", sector, 11, self.bytes_per_sector)
        sector[13] = self.sectors_per_cluster
        struct.pack_into("<H", sector, 14, self.reserved_sectors)
        sector[16] = self.num_fats
        struct.pack_into("<H", sector, 17, 0)    # root entries (FAT32: 0)
        struct.pack_into("<H", sector, 19, 0)    # total16
        sector[21] = 0xF8                         # media descriptor
        struct.pack_into("<H", sector, 22, 0)    # FAT16 sectors/FAT
        struct.pack_into("<I", sector, 32, self.total_sectors)
        struct.pack_into("<I", sector, 36, self.sectors_per_fat)
        struct.pack_into("<I", sector, 44, self.root_cluster)
        struct.pack_into("<H", sector, 48, self.fsinfo_sector)
        sector[66] = 0x29                         # extended boot signature
        struct.pack_into("<I", sector, 67, 0x52564341)  # serial "RVCA"
        sector[71:82] = self.volume_label[:11].ljust(11)
        sector[82:90] = b"FAT32   "
        sector[510:512] = b"\x55\xAA"
        return bytes(sector)

    @classmethod
    def unpack(cls, sector: bytes) -> "BiosParameterBlock":
        if sector[510:512] != b"\x55\xAA":
            raise FilesystemError("missing boot-sector signature")
        if sector[82:90].rstrip() != b"FAT32":
            raise FilesystemError("volume is not FAT32")
        return cls(
            bytes_per_sector=struct.unpack_from("<H", sector, 11)[0],
            sectors_per_cluster=sector[13],
            reserved_sectors=struct.unpack_from("<H", sector, 14)[0],
            num_fats=sector[16],
            total_sectors=struct.unpack_from("<I", sector, 32)[0],
            sectors_per_fat=struct.unpack_from("<I", sector, 36)[0],
            root_cluster=struct.unpack_from("<I", sector, 44)[0],
            fsinfo_sector=struct.unpack_from("<H", sector, 48)[0],
            volume_label=bytes(sector[71:82]),
        )
