"""8.3 directory entries.

Partial-bitstream files use names like ``SOBEL.PBI`` that fit the
classic 8.3 format, so long-file-name entries are not required; names
are upper-cased on the way in, as the paper's minimalist driver would.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import FilesystemError

ENTRY_SIZE = 32
ATTR_READ_ONLY = 0x01
ATTR_DIRECTORY = 0x10
ATTR_ARCHIVE = 0x20
ENTRY_FREE = 0xE5
ENTRY_END = 0x00


def encode_83(name: str) -> bytes:
    """Encode ``NAME.EXT`` into the 11-byte directory field.

    The special dot entries of subdirectories encode as-is per the
    FAT specification ('.' / '..' padded with spaces).
    """
    name = name.strip().upper()
    if name in (".", ".."):
        return name.ljust(11).encode("ascii")
    if not name:
        raise FilesystemError(f"invalid file name {name!r}")
    if "." in name:
        stem, _, ext = name.rpartition(".")
    else:
        stem, ext = name, ""
    if not stem or len(stem) > 8 or len(ext) > 3:
        raise FilesystemError(f"name {name!r} does not fit 8.3")
    for ch in stem + ext:
        if ch in '"*+,/:;<=>?[\\]| ' or ord(ch) < 0x20:
            raise FilesystemError(f"illegal character {ch!r} in {name!r}")
    return (stem.ljust(8) + ext.ljust(3)).encode("ascii")


def decode_83(raw: bytes) -> str:
    """Decode the 11-byte field back into ``NAME.EXT``."""
    stem = raw[:8].decode("ascii", "replace").rstrip()
    ext = raw[8:11].decode("ascii", "replace").rstrip()
    return f"{stem}.{ext}" if ext else stem


@dataclass
class DirEntry:
    """One 32-byte directory record."""

    name: str
    attributes: int = ATTR_ARCHIVE
    first_cluster: int = 0
    size: int = 0

    @property
    def is_directory(self) -> bool:
        return bool(self.attributes & ATTR_DIRECTORY)

    def pack(self) -> bytes:
        name_field = encode_83(self.name)
        # layout: name(11) attr(1) [NTRes..LstAccDate](8) clusHI(2)
        #         [WrtTime WrtDate](4) clusLO(2) size(4)
        return struct.pack(
            "<11sB8xH4xHI",
            name_field,
            self.attributes,
            (self.first_cluster >> 16) & 0xFFFF,
            self.first_cluster & 0xFFFF,
            self.size,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "DirEntry":
        if len(raw) != ENTRY_SIZE:
            raise FilesystemError("directory entry must be 32 bytes")
        name_field, attributes, cluster_hi, cluster_lo, size = struct.unpack(
            "<11sB8xH4xHI", raw
        )
        return cls(
            name=decode_83(name_field),
            attributes=attributes,
            first_cluster=(cluster_hi << 16) | cluster_lo,
            size=size,
        )
