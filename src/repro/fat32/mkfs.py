"""Volume formatting: build FAT32 images for the simulated SD card."""

from __future__ import annotations

from typing import Mapping

from repro.errors import FilesystemError
from repro.fat32.blockdev import BLOCK_SIZE, BlockDevice, RamBlockDevice
from repro.fat32.filesystem import Fat32FileSystem, _PartitionView
from repro.fat32.layout import END_OF_CHAIN, BiosParameterBlock
from repro.fat32.mbr import (
    PARTITION_TYPE_FAT32_LBA,
    PartitionEntry,
    write_mbr,
)


def format_volume(device: BlockDevice, *, first_lba: int = 2048,
                  sectors_per_cluster: int = 8) -> Fat32FileSystem:
    """Partition ``device`` (single FAT32 partition) and format it."""
    total = device.num_blocks
    if total <= first_lba + 1024:
        raise FilesystemError("device too small for a FAT32 volume")
    part_sectors = total - first_lba

    # size the FAT: clusters ~= data_sectors / spc; each FAT sector
    # maps 128 clusters.  One fixed-point refinement is plenty.
    reserved = 32
    spc = sectors_per_cluster
    sectors_per_fat = 1
    for _ in range(3):
        data_sectors = part_sectors - reserved - 2 * sectors_per_fat
        clusters = data_sectors // spc
        sectors_per_fat = -(-(clusters + 2) // 128)
    bpb = BiosParameterBlock(
        sectors_per_cluster=spc,
        reserved_sectors=reserved,
        total_sectors=part_sectors,
        sectors_per_fat=sectors_per_fat,
    )

    write_mbr(device, [
        PartitionEntry(boot_flag=0x80,
                       partition_type=PARTITION_TYPE_FAT32_LBA,
                       first_lba=first_lba, num_sectors=part_sectors)
    ])
    view = _PartitionView(device, first_lba, part_sectors)
    view.write_block(0, bpb.pack())

    # zero both FATs, then seed the three reserved entries
    zero = bytes(BLOCK_SIZE)
    for fat_index in range(bpb.num_fats):
        base = bpb.fat_start_sector + fat_index * sectors_per_fat
        for s in range(sectors_per_fat):
            view.write_block(base + s, zero)
    fs = Fat32FileSystem(view, bpb)
    fs.fat.write_entry(0, 0x0FFF_FFF8)        # media descriptor entry
    fs.fat.write_entry(1, END_OF_CHAIN)
    fs.fat.write_entry(bpb.root_cluster, END_OF_CHAIN)
    fs._write_cluster(bpb.root_cluster, b"")  # empty root directory
    return fs


def make_disk_image(files: Mapping[str, bytes], *,
                    num_blocks: int = 262144) -> RamBlockDevice:
    """Build a RAM disk image holding ``files`` in the root directory.

    262144 blocks = 128 MiB, comfortably holding the full set of
    partial bitstreams for every benchmark sweep.
    """
    device = RamBlockDevice(num_blocks)
    fs = format_volume(device)
    for name, data in files.items():
        fs.write_file(name, data)
    return device
