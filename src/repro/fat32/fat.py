"""FAT chain management."""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import FilesystemError
from repro.fat32.blockdev import BLOCK_SIZE, BlockDevice
from repro.fat32.layout import (
    BAD_CLUSTER,
    BiosParameterBlock,
    CLUSTER_MASK,
    END_OF_CHAIN,
    FREE_CLUSTER,
)

_ENTRIES_PER_SECTOR = BLOCK_SIZE // 4


class FatTable:
    """The file allocation table of one mounted volume.

    All sector addresses are relative to the partition start; the
    filesystem facade supplies a partition-relative device view.
    """

    def __init__(self, device: BlockDevice, bpb: BiosParameterBlock) -> None:
        self.device = device
        self.bpb = bpb
        self._next_free_hint = 3

    # ------------------------------------------------------------------
    # entry access
    # ------------------------------------------------------------------
    def _locate(self, cluster: int) -> tuple[int, int]:
        if cluster >= self.bpb.num_clusters + 2:
            raise FilesystemError(f"cluster {cluster} beyond volume end")
        sector = self.bpb.fat_start_sector + cluster // _ENTRIES_PER_SECTOR
        return sector, (cluster % _ENTRIES_PER_SECTOR) * 4

    def read_entry(self, cluster: int) -> int:
        sector, offset = self._locate(cluster)
        raw = self.device.read_block(sector)
        return int.from_bytes(raw[offset : offset + 4], "little") & CLUSTER_MASK

    def write_entry(self, cluster: int, value: int) -> None:
        sector, offset = self._locate(cluster)
        for fat_index in range(self.bpb.num_fats):
            target = sector + fat_index * self.bpb.sectors_per_fat
            raw = bytearray(self.device.read_block(target))
            # top 4 bits are reserved and must be preserved
            old = int.from_bytes(raw[offset : offset + 4], "little")
            new = (old & ~CLUSTER_MASK) | (value & CLUSTER_MASK)
            raw[offset : offset + 4] = new.to_bytes(4, "little")
            self.device.write_block(target, bytes(raw))

    # ------------------------------------------------------------------
    # chains
    # ------------------------------------------------------------------
    def chain(self, first_cluster: int) -> Iterator[int]:
        """Iterate the cluster chain starting at ``first_cluster``."""
        cluster = first_cluster
        seen = 0
        limit = self.bpb.num_clusters + 2
        while 2 <= cluster < END_OF_CHAIN and cluster != BAD_CLUSTER:
            yield cluster
            cluster = self.read_entry(cluster)
            seen += 1
            if seen > limit:
                raise FilesystemError("FAT chain loop detected")

    def chain_list(self, first_cluster: int) -> List[int]:
        return list(self.chain(first_cluster))

    def allocate(self, count: int, *, link_after: int | None = None) -> int:
        """Allocate ``count`` clusters as a chain; returns the first.

        When ``link_after`` is given, the new chain is appended to it.
        """
        if count <= 0:
            raise FilesystemError("cannot allocate zero clusters")
        allocated: List[int] = []
        cluster = self._next_free_hint
        limit = self.bpb.num_clusters + 2
        scanned = 0
        while len(allocated) < count and scanned < limit:
            if cluster >= limit:
                cluster = 2
            if self.read_entry(cluster) == FREE_CLUSTER:
                allocated.append(cluster)
            cluster += 1
            scanned += 1
        if len(allocated) < count:
            raise FilesystemError("volume full")
        self._next_free_hint = cluster
        # pairwise chain links: the second iterable is one short by design
        for a, b in zip(allocated, allocated[1:], strict=False):
            self.write_entry(a, b)
        self.write_entry(allocated[-1], END_OF_CHAIN)
        if link_after is not None:
            self.write_entry(link_after, allocated[0])
        return allocated[0]

    def free_chain(self, first_cluster: int) -> int:
        """Free a chain; returns the number of clusters released."""
        clusters = self.chain_list(first_cluster)
        for cluster in clusters:
            self.write_entry(cluster, FREE_CLUSTER)
        return len(clusters)

    def count_free(self) -> int:
        """Free-cluster census (linear scan; used by tests and df)."""
        free = 0
        for cluster in range(2, self.bpb.num_clusters + 2):
            if self.read_entry(cluster) == FREE_CLUSTER:
                free += 1
        return free
