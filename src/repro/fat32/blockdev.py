"""Block device abstractions for the filesystem layer."""

from __future__ import annotations

import abc

from repro.errors import FilesystemError

BLOCK_SIZE = 512


class BlockDevice(abc.ABC):
    """A 512-byte-sector random-access device."""

    @property
    @abc.abstractmethod
    def num_blocks(self) -> int: ...

    @abc.abstractmethod
    def read_block(self, lba: int) -> bytes: ...

    @abc.abstractmethod
    def write_block(self, lba: int, data: bytes) -> None: ...

    def _check(self, lba: int) -> None:
        if not 0 <= lba < self.num_blocks:
            raise FilesystemError(
                f"block {lba} out of range (device has {self.num_blocks})"
            )


class RamBlockDevice(BlockDevice):
    """An in-memory disk image (sparse)."""

    def __init__(self, num_blocks: int = 65536) -> None:
        self._num_blocks = num_blocks
        self._blocks: dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def read_block(self, lba: int) -> bytes:
        self._check(lba)
        self.reads += 1
        return self._blocks.get(lba, bytes(BLOCK_SIZE))

    def write_block(self, lba: int, data: bytes) -> None:
        self._check(lba)
        if len(data) != BLOCK_SIZE:
            raise FilesystemError(f"write of {len(data)} bytes is not one block")
        self.writes += 1
        self._blocks[lba] = bytes(data)

    def populated_blocks(self) -> list[int]:
        """LBAs that have been written (sparse image transfer)."""
        return sorted(self._blocks)

    def to_image(self, max_blocks: int | None = None) -> bytes:
        """Serialize the populated prefix as a flat image."""
        if not self._blocks:
            return b""
        top = max(self._blocks) + 1 if max_blocks is None else max_blocks
        return b"".join(
            self._blocks.get(i, bytes(BLOCK_SIZE)) for i in range(top)
        )


class SdBackdoorBlockDevice(BlockDevice):
    """Zero-time access to a simulated SD card's storage.

    Used to *prepare* card contents before a simulation run and to
    verify them afterwards; the timed path goes through the SPI driver
    (:class:`repro.drivers.fileio.SpiSdBlockDevice`).
    """

    def __init__(self, sdcard) -> None:
        self.sdcard = sdcard

    @property
    def num_blocks(self) -> int:
        return self.sdcard.blocks

    def read_block(self, lba: int) -> bytes:
        self._check(lba)
        return self.sdcard.read_block_backdoor(lba)

    def write_block(self, lba: int, data: bytes) -> None:
        self._check(lba)
        if len(data) != BLOCK_SIZE:
            raise FilesystemError(f"write of {len(data)} bytes is not one block")
        self.sdcard.load_block(lba, data)
