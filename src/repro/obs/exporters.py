"""Exporters: Chrome-trace/Perfetto JSON, Prometheus text, JSON metrics.

Every exporter is a pure function of recorded state — no wall-clock, no
environment — so identical simulation runs export byte-identical
artifacts (asserted by the determinism tests and the CI schema check).

Chrome-trace timestamps are microseconds (the format's unit); cycles
convert at the SoC clock, so a 100 MHz run shows 0.01 us per cycle and
the Perfetto UI displays real simulated time.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import SpanTracer


# ---------------------------------------------------------------------------
# Chrome trace / Perfetto
# ---------------------------------------------------------------------------

def _cycles_to_us(cycle: int, freq_hz: float) -> float:
    return round(cycle * 1e6 / freq_hz, 4)


def chrome_trace_json(tracer: SpanTracer, freq_hz: float = 100e6) -> str:
    """Serialize the trace in Chrome trace-event JSON (Perfetto loads it).

    Tracks map to threads of one process; spans become complete ("X")
    events, instants become "i" events and counter samples become "C"
    events.  Output is deterministic: events sort by (timestamp,
    creation order) and keys are sorted.
    """
    tracks = tracer.tracks
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    events: List[dict] = []
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "ts": 0, "args": {"name": track},
        })
    timed: List[tuple] = []
    for order, span in enumerate(tracer.spans):
        if span.end_cycle is None:
            continue  # still open: not exportable as a complete event
        timed.append((span.start_cycle, 0, order, {
            "ph": "X",
            "name": span.name,
            "cat": span.track,
            "pid": 1,
            "tid": tids[span.track],
            "ts": _cycles_to_us(span.start_cycle, freq_hz),
            "dur": _cycles_to_us(span.duration, freq_hz),
            "args": dict(span.args, start_cycle=span.start_cycle,
                         dur_cycles=span.duration),
        }))
    for order, instant in enumerate(tracer.instants):
        timed.append((instant.cycle, 1, order, {
            "ph": "i",
            "s": "t",
            "name": instant.name,
            "cat": instant.track,
            "pid": 1,
            "tid": tids[instant.track],
            "ts": _cycles_to_us(instant.cycle, freq_hz),
            "args": dict(instant.args, cycle=instant.cycle),
        }))
    counter_tracks: List[str] = []
    for order, (cycle, name, value) in enumerate(tracer.counter_samples):
        if name not in counter_tracks:
            counter_tracks.append(name)
        timed.append((cycle, 2, order, {
            "ph": "C",
            "name": name,
            "pid": 1,
            "tid": 0,
            "ts": _cycles_to_us(cycle, freq_hz),
            "args": {"value": value},
        }))
    events.extend(event for _c, _k, _o, event in sorted(
        timed, key=lambda item: item[:3]))
    document = {
        "displayTimeUnit": "ms",
        "otherData": {
            "clock_freq_hz": freq_hz,
            "counter_tracks": sorted(counter_tracks),
            "source": "repro.obs",
        },
        "traceEvents": events,
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def validate_chrome_trace(text: str) -> List[str]:
    """Minimal schema check for an exported trace; returns problems.

    Used by the CI artifact job and the exporter tests: verifies the
    document parses, has the top-level shape, and that every event
    carries the required keys with sane types.  An empty list means the
    trace is structurally valid.
    """
    problems: List[str] = []
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    if not isinstance(document, dict):
        return ["top level must be an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "i", "C", "M", "B", "E"):
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {index}: missing name")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {index}: missing ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"event {index}: bad dur {duration!r}")
        if phase == "C":
            args = event.get("args")
            value = args.get("value") if isinstance(args, dict) else None
            if not isinstance(value, (int, float)):
                problems.append(
                    f"event {index}: counter sample without numeric "
                    f"args.value")
        if phase in ("X", "i", "C") and not isinstance(
                event.get("tid"), int):
            problems.append(f"event {index}: missing tid")
    return problems


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _merge_labels(suffix_labels: Dict[str, str], base: str) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(suffix_labels.items()))
    return "{" + inner + "}" if inner else base


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_headers: set[str] = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for instrument in registry.instruments():
        suffix = instrument.label_suffix
        if isinstance(instrument, Counter):
            header(instrument.name, "counter", instrument.help)
            lines.append(f"{instrument.name}{suffix} {instrument.value}")
        elif isinstance(instrument, Gauge):
            header(instrument.name, "gauge", instrument.help)
            lines.append(f"{instrument.name}{suffix} {instrument.value}")
        else:
            assert isinstance(instrument, Histogram)
            header(instrument.name, "histogram", instrument.help)
            base_labels = dict(instrument.labels)
            for bound, cumulative in instrument.cumulative_buckets():
                labels = _merge_labels(
                    dict(base_labels, le=str(bound)), "")
                lines.append(
                    f"{instrument.name}_bucket{labels} {cumulative}")
            labels = _merge_labels(dict(base_labels, le="+Inf"), "")
            lines.append(f"{instrument.name}_bucket{labels} "
                         f"{instrument.count}")
            lines.append(f"{instrument.name}_sum{suffix} {instrument.total}")
            lines.append(f"{instrument.name}_count{suffix} "
                         f"{instrument.count}")
    return "\n".join(lines) + "\n"


def metrics_json(registry: MetricsRegistry) -> str:
    """JSON dump of the registry snapshot (stable key order)."""
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2) + "\n"
