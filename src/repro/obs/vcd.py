"""VCD export: value-change dump of the key handshake signals.

The tracer's ``signal()`` channel records (cycle, value) transitions of
the control/handshake signals along the reconfiguration path — RP
decouple, AXIS switch select, DMA run/busy, ICAP session and interrupt
pending lines.  This module serializes them as a Value Change Dump any
waveform viewer (GTKWave, Surfer) opens, one timescale tick per SoC
clock cycle.

The header contains no timestamps or host information: identical runs
produce byte-identical files.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.tracer import SpanTracer

#: printable VCD identifier characters (short codes for signals)
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    if index < len(_ID_CHARS):
        return _ID_CHARS[index]
    out = []
    while index:
        index, digit = divmod(index, len(_ID_CHARS))
        out.append(_ID_CHARS[digit])
    return "".join(reversed(out))


def _format_value(value: int, width: int, ident: str) -> str:
    if width == 1:
        return f"{value & 1}{ident}"
    return f"b{value:b} {ident}"


def vcd_dump(tracer: SpanTracer, freq_hz: float = 100e6) -> str:
    """Serialize the recorded signal changes as a VCD document."""
    period_ns = 1e9 / freq_hz
    timescale = (f"{period_ns:.0f} ns" if period_ns >= 1
                 else f"{period_ns * 1000:.0f} ps")
    names = sorted(tracer.signals)
    widths: Dict[str, int] = {}
    idents: Dict[str, str] = {}
    for index, name in enumerate(names):
        peak = max((value for _c, value in tracer.signals[name]), default=0)
        widths[name] = max(1, int(peak).bit_length())
        idents[name] = _identifier(index)

    lines: List[str] = [
        "$comment repro.obs signal dump (cycle-accurate simulation) $end",
        f"$timescale {timescale} $end",
        "$scope module soc $end",
    ]
    for name in names:
        width = widths[name]
        lines.append(f"$var wire {width} {idents[name]} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # initial values at time 0, then merged time-ordered changes
    changes: List[Tuple[int, int, str]] = []  # (cycle, order, formatted)
    initial: Dict[str, int] = {}
    for order, name in enumerate(names):
        series = tracer.signals[name]
        if series and series[0][0] == 0:
            initial[name] = series[0][1]
            series = series[1:]
        else:
            initial[name] = 0
        for cycle, value in series:
            changes.append((cycle, order,
                            _format_value(value, widths[name], idents[name])))
    lines.append("$dumpvars")
    for name in names:
        lines.append(_format_value(initial[name], widths[name], idents[name]))
    lines.append("$end")

    current_time = None
    for cycle, _order, formatted in sorted(changes, key=lambda c: c[:2]):
        if cycle != current_time:
            lines.append(f"#{cycle}")
            current_time = cycle
        lines.append(formatted)
    return "\n".join(lines) + "\n"


def parse_vcd(text: str) -> Dict[str, List[Tuple[int, int]]]:
    """Re-import a :func:`vcd_dump` document into change lists.

    Returns ``{signal name: [(cycle, value), ...]}`` with the time-0
    ``$dumpvars`` section included as cycle-0 entries — the inverse of
    the exporter for round-trip tests and external tooling.  Raises
    :class:`ValueError` on a document this exporter could not have
    produced.
    """
    names_by_ident: Dict[str, str] = {}
    out: Dict[str, List[Tuple[int, int]]] = {}
    current_time = 0
    in_header = True
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if in_header:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire <width> <ident> <name> $end
                if len(parts) < 6 or parts[-1] != "$end":
                    raise ValueError(f"malformed $var line: {line!r}")
                names_by_ident[parts[3]] = parts[4]
                out[parts[4]] = []
            elif line == "$enddefinitions $end":
                in_header = False
            continue
        if line in ("$dumpvars", "$end") or line.startswith("$comment"):
            continue
        if line.startswith("#"):
            current_time = int(line[1:])
            continue
        if line.startswith("b"):
            value_text, ident = line[1:].split()
            value = int(value_text, 2)
        else:
            value, ident = int(line[0]), line[1:]
        name = names_by_ident.get(ident)
        if name is None:
            raise ValueError(f"value change for unknown identifier {line!r}")
        out[name].append((current_time, value))
    return out
