"""Observability: span tracing, metrics and exporters for the simulator.

The package replaces the ad-hoc message log (``repro.sim.tracing``) as
the primary instrumentation surface:

* :class:`SpanTracer` — hierarchical begin/end spans with cycle
  timestamps over the DMA engines, AXIS switch, AXIS2ICAP converter,
  ICAP parser, RP decouple/recouple, PLIC delivery and driver API calls;
* :class:`MetricsRegistry` — named counters, gauges and HDR-bucketed
  cycle histograms components register into;
* exporters — Chrome-trace/Perfetto JSON, VCD signal dumps, Prometheus
  text, JSON snapshots, and the Tr latency-breakdown report.

Attach with ``soc.attach_observability()`` (or set a process-wide
default via :func:`set_default_observability` so every
``build_soc()`` — including the ones evaluation workloads build
internally — comes up instrumented).  When nothing is attached, every
emit path reduces to one ``is not None`` check: the tracer-off overhead
is gated below 2 % by ``benchmarks/perf.py --obs-check``.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.exporters import (
    chrome_trace_json,
    metrics_json,
    prometheus_text,
    validate_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    Phase,
    TrBreakdown,
    build_tr_breakdown,
    render_tr_breakdown,
)
from repro.obs.tracer import InstantEvent, Span, SpanTracer
from repro.obs.vcd import parse_vcd, vcd_dump


class Observability:
    """One tracer plus one metrics registry, attached as a unit."""

    def __init__(self, tracer: Optional[SpanTracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # convenience re-exports so callers hold a single handle ------------
    def chrome_trace(self, freq_hz: float = 100e6) -> str:
        return chrome_trace_json(self.tracer, freq_hz)

    def vcd(self, freq_hz: float = 100e6) -> str:
        return vcd_dump(self.tracer, freq_hz)

    def prometheus(self) -> str:
        return prometheus_text(self.metrics)

    def json_metrics(self) -> str:
        return metrics_json(self.metrics)


#: process-wide default observability, consulted by ``build_soc``
_default: Optional[Observability] = None


def set_default_observability(obs: Optional[Observability]) -> None:
    """Install (or clear, with None) the process-wide default.

    While set, every subsequently built SoC auto-attaches to it — the
    hook evaluation workloads and the perf harness use to instrument
    SoCs they construct internally.
    """
    global _default
    _default = obs


def get_default_observability() -> Optional[Observability]:
    return _default


__all__ = [
    "Observability",
    "SpanTracer",
    "Span",
    "InstantEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_json",
    "validate_chrome_trace",
    "prometheus_text",
    "metrics_json",
    "vcd_dump",
    "parse_vcd",
    "Phase",
    "TrBreakdown",
    "build_tr_breakdown",
    "render_tr_breakdown",
    "set_default_observability",
    "get_default_observability",
]
