"""Latency-breakdown report: where the cycles of one DPR run go.

The paper reports a single end-to-end number — Tr = 1651 us for the
reference partial bitstream — and this module decomposes it from the
driver's phase spans: DMA kick (programming SA/LENGTH), the overlapped
DMA+ICAP streaming window, interrupt delivery (DMA completion to the
PLIC gateway to the pending line), and interrupt service.  The phases
are contiguous sub-intervals of the driver's Tr window, so their cycle
sum equals the end-to-end window *exactly*; the report verifies that
identity and cross-checks the window against the CLINT-measured Tr
(which is quantized to the 5 MHz timebase, paper Sec. III-A).

Phases outside the Tr window (SD-card load, the decision time Td,
decouple and recouple) are reported alongside so one run shows the
whole Listing-1 flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs.tracer import SpanTracer


@dataclass(frozen=True)
class Phase:
    """One contiguous segment of the breakdown."""

    name: str
    start_cycle: int
    end_cycle: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


@dataclass(frozen=True)
class TrBreakdown:
    """Decomposition of one reconfiguration's timing."""

    module: str
    freq_hz: float
    #: contiguous phases partitioning the Tr window
    tr_phases: List[Phase]
    #: context phases outside the Tr window (sd-load, decision, ...)
    context_phases: List[Phase]
    tr_window_cycles: int
    #: the CLINT-measured Tr in us (None when no driver result given)
    tr_reported_us: Optional[float]
    #: absolute cycle bounds of the Tr window span (the energy
    #: breakdown integrates over exactly this interval)
    window_start_cycle: int = 0
    window_end_cycle: int = 0

    @property
    def phase_sum_cycles(self) -> int:
        return sum(phase.cycles for phase in self.tr_phases)

    @property
    def consistent(self) -> bool:
        """Phase cycle sum equals the end-to-end window exactly."""
        return self.phase_sum_cycles == self.tr_window_cycles

    def cycles_to_us(self, cycles: int) -> float:
        return cycles * 1e6 / self.freq_hz


def build_tr_breakdown(tracer: SpanTracer, freq_hz: float = 100e6, *,
                       tr_reported_us: Optional[float] = None
                       ) -> TrBreakdown:
    """Assemble the breakdown from the most recent driver reconfig spans.

    Raises :class:`ValueError` when the tracer holds no completed
    reconfiguration (nothing was instrumented, or the run failed before
    the Tr window closed).
    """
    window = tracer.last("driver", "tr_window")
    if window is None or window.end_cycle is None:
        raise ValueError(
            "no completed reconfiguration in the trace; run a DPR with "
            "observability attached first")
    window_end = window.end_cycle
    reconfig = tracer.last("driver", "reconfig")
    module = str(reconfig.args.get("module", "?")) if reconfig else "?"

    phases: List[Phase] = []
    children = sorted(tracer.children(window),
                      key=lambda span: span.start_cycle)
    for span in children:
        if span.end_cycle is None:
            continue
        if span.name == "transfer" and "dma_done_cycle" in span.args:
            done = int(span.args["dma_done_cycle"])
            if span.start_cycle <= done <= span.end_cycle:
                phases.append(Phase("dma+icap stream",
                                    span.start_cycle, done))
                phases.append(Phase("irq delivery", done, span.end_cycle))
                continue
        phases.append(Phase(span.name, span.start_cycle, span.end_cycle))

    context: List[Phase] = []
    sd_spans = tracer.find("driver", "sd_load")
    if sd_spans:
        context.append(Phase("sd-card load (all modules)",
                             sd_spans[0].start_cycle,
                             sd_spans[-1].end_cycle or
                             sd_spans[-1].start_cycle))
    for name, label in (("decision", "decision (Td)"),
                        ("decouple", "decouple"),
                        ("recouple", "recouple")):
        span = tracer.last("driver", name)
        if span is not None and span.end_cycle is not None:
            context.append(Phase(label, span.start_cycle, span.end_cycle))

    return TrBreakdown(
        module=module,
        freq_hz=freq_hz,
        tr_phases=phases,
        context_phases=context,
        tr_window_cycles=window.duration,
        tr_reported_us=tr_reported_us,
        window_start_cycle=window.start_cycle,
        window_end_cycle=window_end,
    )


def render_tr_breakdown(breakdown: TrBreakdown) -> str:
    """Human-readable table of the decomposition plus the cross-checks."""
    lines = [f"Tr latency breakdown — module {breakdown.module!r} "
             f"at {breakdown.freq_hz / 1e6:.0f} MHz"]
    width = max([len(p.name) for p in
                 breakdown.tr_phases + breakdown.context_phases] + [12])
    total = breakdown.tr_window_cycles or 1
    lines.append("")
    lines.append("  Tr window phases (contiguous):")
    for phase in breakdown.tr_phases:
        us = breakdown.cycles_to_us(phase.cycles)
        share = 100.0 * phase.cycles / total
        lines.append(f"    {phase.name:<{width}}  {phase.cycles:>9,} cyc"
                     f"  {us:>10.2f} us  {share:5.1f}%")
    lines.append(f"    {'sum':<{width}}  "
                 f"{breakdown.phase_sum_cycles:>9,} cyc"
                 f"  {breakdown.cycles_to_us(breakdown.phase_sum_cycles):>10.2f} us"
                 f"  100.0%")
    lines.append("")
    mark = "OK" if breakdown.consistent else "MISMATCH"
    lines.append(f"  cross-check: phase sum vs end-to-end window — {mark} "
                 f"({breakdown.phase_sum_cycles:,} == "
                 f"{breakdown.tr_window_cycles:,} cycles)")
    if breakdown.tr_reported_us is not None:
        window_us = breakdown.cycles_to_us(breakdown.tr_window_cycles)
        delta = breakdown.tr_reported_us - window_us
        lines.append(
            f"  cross-check: CLINT-reported Tr {breakdown.tr_reported_us:.2f} us"
            f" vs span window {window_us:.2f} us "
            f"(delta {delta:+.2f} us, 5 MHz timebase quantization)")
    if breakdown.context_phases:
        lines.append("")
        lines.append("  outside the Tr window:")
        for phase in breakdown.context_phases:
            us = breakdown.cycles_to_us(phase.cycles)
            lines.append(f"    {phase.name:<{width}}  "
                         f"{phase.cycles:>9,} cyc  {us:>10.2f} us")
    return "\n".join(lines)
