"""Metrics registry: named counters, gauges and HDR-style histograms.

Components register instruments once (at observability attach time) and
update them on hot paths with plain attribute operations — no dict
lookups, no string formatting.  The registry unifies the counters that
used to be hand-collected by ``collect_soc_stats`` and adds
distribution-valued measurements (per-burst DMA latency, interrupt
service latency, crossbar contention) the scalar snapshot cannot hold.

Histograms use HDR-style bucketing: values below 8 get exact unit
buckets, larger values land in power-of-two octaves split into 8
sub-buckets, bounding the relative quantization error at 12.5 % while
keeping memory constant for any value range — the standard shape for
latency distributions in serving systems.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type, TypeVar

_SUB_BITS = 3          # 8 sub-buckets per octave
_SUB = 1 << _SUB_BITS
_LINEAR_LIMIT = 1 << _SUB_BITS


def _bucket_index(value: int) -> int:
    if value < _LINEAR_LIMIT:
        return max(0, value)
    shift = value.bit_length() - 1 - _SUB_BITS
    return (shift << _SUB_BITS) + (value >> shift)


def _bucket_upper_bound(index: int) -> int:
    """Largest value that maps into bucket ``index`` (inclusive)."""
    if index < _LINEAR_LIMIT:
        return index
    # indexes [8, 15] come from shift 0 (values 8..15), [16, 23] from
    # shift 1, ... — the octave is (index >> _SUB_BITS) - 1
    shift = (index >> _SUB_BITS) - 1
    sub = index & (_SUB - 1) | _SUB
    return ((sub + 1) << shift) - 1


LabelItems = Tuple[Tuple[str, str], ...]


class _Instrument:
    """Shared identity: a name plus optional prometheus-style labels."""

    __slots__ = ("name", "help", "labels")

    def __init__(self, name: str, help_text: str,
                 labels: Optional[Dict[str, str]]) -> None:
        self.name = name
        self.help = help_text
        self.labels: LabelItems = tuple(sorted((labels or {}).items()))

    @property
    def label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"


_InstrumentT = TypeVar("_InstrumentT", bound=_Instrument)


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, name: str, help_text: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, help_text, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


#: gauge cross-shard reductions :meth:`MetricsRegistry.merge` accepts
GAUGE_MERGE_MODES = ("max", "min", "sum", "last")


class Gauge(_Instrument):
    """A value that can go up and down.

    ``merge_mode`` declares how shard values reduce when registries
    merge: ``max`` (the default — order-independent and right for
    peaks/high-water marks), ``min``, ``sum`` (for gauges that are
    really partitioned totals) or ``last`` (explicitly order-dependent;
    only sound when every shard reports the same value).
    """

    __slots__ = ("value", "merge_mode")

    def __init__(self, name: str, help_text: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 merge_mode: str = "max") -> None:
        super().__init__(name, help_text, labels)
        if merge_mode not in GAUGE_MERGE_MODES:
            raise ValueError(
                f"gauge merge_mode {merge_mode!r} not in "
                f"{GAUGE_MERGE_MODES}")
        self.value = 0.0
        self.merge_mode = merge_mode

    def set(self, value: float) -> None:
        self.value = value


class Histogram(_Instrument):
    """HDR-style histogram over non-negative integer values (cycles)."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self, name: str, help_text: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, help_text, labels)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        value = int(value)
        if value < 0:
            value = 0
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: List[int]) -> None:
        """Record a batch of values in one call.

        Exactly equivalent to calling :meth:`record` per value — hot
        paths (the DMA descriptor engine) accumulate samples locally
        and flush them in bulk instead of paying one method call per
        burst.
        """
        buckets = self.buckets
        get = buckets.get
        total = 0
        lo = hi = None
        for value in values:
            value = int(value)
            if value < 0:
                value = 0
            # _bucket_index, inlined (negatives already clamped)
            if value < _LINEAR_LIMIT:
                index = value
            else:
                shift = value.bit_length() - 1 - _SUB_BITS
                index = (shift << _SUB_BITS) + (value >> shift)
            buckets[index] = get(index, 0) + 1
            total += value
            if lo is None or value < lo:
                lo = value
            if hi is None or value > hi:
                hi = value
        if lo is None:
            return
        self.count += len(values)
        self.total += total
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Value at quantile ``q`` in [0, 1] (bucket upper bound)."""
        if not self.count:
            return 0
        target = max(1, int(q * self.count + 0.5))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return min(_bucket_upper_bound(index),
                           self.max if self.max is not None else 0)
        return self.max or 0

    def cumulative_buckets(self) -> List[Tuple[int, int]]:
        """Sorted (upper_bound, cumulative_count) pairs (prometheus le)."""
        out: List[Tuple[int, int]] = []
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            out.append((_bucket_upper_bound(index), seen))
        return out


class MetricsRegistry:
    """Instrument factory and container; idempotent per (name, labels)."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], _Instrument] = {}

    def _get(self, cls: Type[_InstrumentT], name: str, help_text: str,
             labels: Optional[Dict[str, str]]) -> _InstrumentT:
        key = (name, tuple(sorted((labels or {}).items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, help_text, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str, help_text: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[Dict[str, str]] = None, *,
              merge_mode: Optional[str] = None) -> Gauge:
        instrument = self._get(Gauge, name, help_text, labels)
        if merge_mode is not None:
            if merge_mode not in GAUGE_MERGE_MODES:
                raise ValueError(
                    f"gauge merge_mode {merge_mode!r} not in "
                    f"{GAUGE_MERGE_MODES}")
            instrument.merge_mode = merge_mode
        return instrument

    def histogram(self, name: str, help_text: str = "",
                  labels: Optional[Dict[str, str]] = None) -> Histogram:
        return self._get(Histogram, name, help_text, labels)

    def instruments(self) -> List[_Instrument]:
        """All instruments, sorted by (name, labels) for stable export."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[_Instrument]:
        return self._instruments.get(
            (name, tuple(sorted((labels or {}).items()))))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s instruments into this registry.

        The per-instrument merge policy (documented in
        docs/OBSERVABILITY.md and covered by the merge unit tests):

        * **Counter** — values add (a count is a count on any shard);
        * **Histogram** — bucket-wise add, plus count/total and
          min/max merges, so every quantile reflects all shards;
        * **Gauge** — reduced per the *destination* gauge's
          ``merge_mode``: ``max`` (default), ``min``, ``sum`` or
          ``last``.  A gauge the destination has never seen adopts the
          source's mode and value.

        Every default reduction is order-independent, which is what
        keeps the fleet runner's serial vs. sharded outputs
        byte-identical.
        """
        for instrument in other.instruments():
            labels = dict(instrument.labels)
            if isinstance(instrument, Counter):
                self.counter(instrument.name, instrument.help,
                             labels).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                existing = self.get(instrument.name, labels)
                mine = self.gauge(instrument.name, instrument.help, labels)
                if existing is None:
                    mine.merge_mode = instrument.merge_mode
                    mine.set(instrument.value)
                elif mine.merge_mode == "max":
                    mine.set(max(mine.value, instrument.value))
                elif mine.merge_mode == "min":
                    mine.set(min(mine.value, instrument.value))
                elif mine.merge_mode == "sum":
                    mine.set(mine.value + instrument.value)
                else:  # "last"
                    mine.set(instrument.value)
            else:
                assert isinstance(instrument, Histogram)
                mine = self.histogram(instrument.name, instrument.help,
                                      labels)
                for index, n in instrument.buckets.items():
                    mine.buckets[index] = mine.buckets.get(index, 0) + n
                mine.count += instrument.count
                mine.total += instrument.total
                if instrument.min is not None and (
                        mine.min is None or instrument.min < mine.min):
                    mine.min = instrument.min
                if instrument.max is not None and (
                        mine.max is None or instrument.max > mine.max):
                    mine.max = instrument.max

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every instrument (JSON-exportable)."""
        out: Dict[str, object] = {}
        for instrument in self.instruments():
            key = instrument.name + instrument.label_suffix
            if isinstance(instrument, Counter):
                out[key] = instrument.value
            elif isinstance(instrument, Gauge):
                out[key] = instrument.value
            else:
                assert isinstance(instrument, Histogram)
                out[key] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                    "mean": round(instrument.mean, 3),
                    "p50": instrument.percentile(0.50),
                    "p99": instrument.percentile(0.99),
                }
        return out
