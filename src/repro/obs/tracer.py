"""Span-based tracing: hierarchical cycle-timestamped spans.

A :class:`SpanTracer` turns the simulator's instrumented components into
a causal timeline: every DMA transfer, ICAP session, interrupt delivery
and driver API phase is a *span* — a named interval with begin/end cycle
timestamps, a track (one per component), and a parent (the span that was
open on the same track when it began).  Alongside spans the tracer
records *instant* events (point-in-time markers), *counter samples*
(time series for Perfetto counter tracks) and *signal changes* (for the
VCD exporter).

Everything is recorded in cycles, never wall-clock, so two identical
simulations produce byte-identical exports.  Recording is opt-in: a
component's emit path is guarded by an ``obs is not None`` check and
costs nothing when no tracer is attached.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class Span:
    """One traced interval on a track; ``end_cycle`` None while open."""

    __slots__ = ("span_id", "track", "name", "start_cycle", "end_cycle",
                 "parent_id", "_args")

    def __init__(self, span_id: int, track: str, name: str,
                 start_cycle: int, parent_id: Optional[int],
                 args: Optional[Dict[str, Any]]) -> None:
        self.span_id = span_id
        self.track = track
        self.name = name
        self.start_cycle = start_cycle
        self.end_cycle: Optional[int] = None
        self.parent_id = parent_id
        self._args: Optional[Dict[str, Any]] = args

    @property
    def args(self) -> Dict[str, Any]:
        """Span attributes, materialized lazily.

        Argless spans (the vast majority on hot tracks) never allocate
        a dict until an exporter or query actually reads them.
        """
        args = self._args
        if args is None:
            args = self._args = {}
        return args

    @property
    def duration(self) -> int:
        if self.end_cycle is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_cycle - self.start_cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.track}/{self.name} "
                f"[{self.start_cycle}, {self.end_cycle}]>")


class InstantEvent:
    """A point-in-time marker on a track."""

    __slots__ = ("cycle", "track", "name", "_args")

    def __init__(self, cycle: int, track: str, name: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self.cycle = cycle
        self.track = track
        self.name = name
        self._args: Optional[Dict[str, Any]] = args

    @property
    def args(self) -> Dict[str, Any]:
        """Event attributes, materialized lazily (see :class:`Span`)."""
        args = self._args
        if args is None:
            args = self._args = {}
        return args


class SpanTracer:
    """Collects spans, instants, counter samples and signal changes."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.instants: List[InstantEvent] = []
        #: (cycle, series name, value) samples for counter tracks
        self.counter_samples: List[Tuple[int, str, float]] = []
        #: signal name -> [(cycle, value)] change lists (VCD source data)
        self.signals: Dict[str, List[Tuple[int, int]]] = {}
        self._open: Dict[str, List[Span]] = {}  # per-track span stack
        self._next_id = 1

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin(self, track: str, name: str, cycle: int, **args: Any) -> Span:
        """Open a span on ``track``; nests under the open span, if any."""
        stack = self._open.setdefault(track, [])
        parent_id = stack[-1].span_id if stack else None
        span = Span(self._next_id, track, name, cycle, parent_id, args or None)
        self._next_id += 1
        self.spans.append(span)
        stack.append(span)
        return span

    def end(self, span: Span, cycle: int, **args: Any) -> Span:
        """Close ``span`` at ``cycle``; later args win on key collision."""
        if span.end_cycle is not None:
            raise ValueError(f"span {span.name!r} already ended")
        if cycle < span.start_cycle:
            raise ValueError(
                f"span {span.name!r} cannot end at {cycle} before its "
                f"start {span.start_cycle}")
        span.end_cycle = cycle
        if args:
            span.args.update(args)
        stack = self._open.get(span.track)
        if stack and span in stack:
            stack.remove(span)
        return span

    def open_span(self, track: str) -> Optional[Span]:
        """The innermost open span on ``track`` (None when idle)."""
        stack = self._open.get(track)
        return stack[-1] if stack else None

    def end_open(self, track: str, cycle: int, *, strict: bool = False,
                 **args: Any) -> int:
        """Close every open span on ``track`` (error-path cleanup).

        Returns the number of spans closed, innermost first.  A track
        with nothing open returns 0 deterministically; pass
        ``strict=True`` to raise :class:`ValueError` instead (for
        callers that know a span must be in flight).
        """
        stack = self._open.get(track)
        if not stack:
            if strict:
                raise ValueError(f"no open span on track {track!r}")
            return 0
        closed = 0
        while stack:
            self.end(stack[-1], cycle, **args)
            closed += 1
        return closed

    # ------------------------------------------------------------------
    # instants / counters / signals
    # ------------------------------------------------------------------
    def instant(self, track: str, name: str, cycle: int, **args: Any) -> None:
        self.instants.append(InstantEvent(cycle, track, name, args or None))

    def count(self, name: str, cycle: int, value: float) -> None:
        """Record one sample of a counter time series."""
        self.counter_samples.append((cycle, name, value))

    def signal(self, name: str, cycle: int, value: int) -> None:
        """Record a signal change (deduplicated against the last value)."""
        changes = self.signals.setdefault(name, [])
        if changes and changes[-1][1] == value:
            return
        changes.append((cycle, value))

    # ------------------------------------------------------------------
    # queries (used by the latency-breakdown report and tests)
    # ------------------------------------------------------------------
    def find(self, track: str, name: str) -> List[Span]:
        return [s for s in self.spans
                if s.track == track and s.name == name]

    def last(self, track: str, name: str) -> Optional[Span]:
        spans = self.find(track, name)
        return spans[-1] if spans else None

    def children(self, span: Span, *, allow_open: bool = False) -> List[Span]:
        """Direct children of ``span``, ordered by (start_cycle, id).

        The order is deterministic regardless of recording order.
        Querying an *unfinished* span raises :class:`ValueError` — its
        child set is not final — unless ``allow_open=True``.
        """
        if span.end_cycle is None and not allow_open:
            raise ValueError(
                f"span {span.name!r} is still open; its children are not "
                f"final (pass allow_open=True to inspect an in-flight span)")
        out = [s for s in self.spans if s.parent_id == span.span_id]
        out.sort(key=lambda s: (s.start_cycle, s.span_id))
        return out

    @property
    def tracks(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.track not in seen:
                seen.append(span.track)
        for event in self.instants:
            if event.track not in seen:
                seen.append(event.track)
        return seen

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.counter_samples.clear()
        self.signals.clear()
        self._open.clear()
        self._next_id = 1
