"""Reconfiguration-energy breakdown, phase-aligned with the Tr report.

The energy breakdown reuses the *exact* phase boundaries of
:func:`repro.obs.report.build_tr_breakdown` — the phases are the same
:class:`~repro.obs.report.Phase` cycle intervals, so the two tables
line up cycle-for-cycle and the energy identity mirrors the latency
identity: per-phase component energies sum to each phase total, phase
totals sum to the Tr-window total, and the window total equals the
power-series integral over the window (all derived from one
contribution list, see :mod:`repro.power.model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.report import Phase, TrBreakdown, build_tr_breakdown
from repro.obs.tracer import SpanTracer
from repro.power.model import PowerModel
from repro.power.profile import DEFAULT_PROFILE, PowerProfile


@dataclass(frozen=True)
class EnergyPhase:
    """Energy of one Tr-breakdown phase, split per component."""

    name: str
    start_cycle: int
    end_cycle: int
    component_nj: Dict[str, float]

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def total_nj(self) -> float:
        return sum(self.component_nj.values())


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-phase, per-component energy of one reconfiguration."""

    module: str
    freq_hz: float
    profile_version: str
    components: Tuple[str, ...]
    #: phases with identical boundaries to ``TrBreakdown.tr_phases``
    phases: List[EnergyPhase]
    #: context phases outside the Tr window (sd-load, decision, ...)
    context_phases: List[EnergyPhase]
    #: power-series integral over the whole Tr window
    tr_window_nj: float
    #: the latency breakdown the phases were taken from
    timing: TrBreakdown

    @property
    def total_nj(self) -> float:
        return sum(phase.total_nj for phase in self.phases)

    def component_totals(self) -> Dict[str, float]:
        out: Dict[str, float] = {name: 0.0 for name in self.components}
        for phase in self.phases:
            for name, nj in phase.component_nj.items():
                out[name] = out.get(name, 0.0) + nj
        return out

    @property
    def consistent(self) -> bool:
        """Phase/component sums equal the window integral (<= 0.1 %)."""
        total = self.total_nj
        window = self.tr_window_nj
        if not self.phases_match_timing:
            return False
        return abs(total - window) <= 1e-3 * max(abs(window), 1e-9)

    @property
    def phases_match_timing(self) -> bool:
        """Energy phases reuse the Tr phases cycle-for-cycle."""
        timing = [(p.name, p.start_cycle, p.end_cycle)
                  for p in self.timing.tr_phases]
        energy = [(p.name, p.start_cycle, p.end_cycle) for p in self.phases]
        return timing == energy

    def cycles_to_us(self, cycles: int) -> float:
        return cycles * 1e6 / self.freq_hz

    def to_dict(self) -> Dict[str, Any]:
        def phase_dict(phase: EnergyPhase) -> Dict[str, Any]:
            return {
                "name": phase.name,
                "start_cycle": phase.start_cycle,
                "end_cycle": phase.end_cycle,
                "cycles": phase.cycles,
                "component_nj": {name: round(nj, 3) for name, nj
                                 in sorted(phase.component_nj.items())},
                "total_nj": round(phase.total_nj, 3),
            }
        return {
            "module": self.module,
            "freq_hz": self.freq_hz,
            "profile_version": self.profile_version,
            "components": list(self.components),
            "phases": [phase_dict(p) for p in self.phases],
            "context_phases": [phase_dict(p) for p in self.context_phases],
            "component_totals_nj": {name: round(nj, 3) for name, nj
                                    in sorted(self.component_totals().items())},
            "total_nj": round(self.total_nj, 3),
            "tr_window_nj": round(self.tr_window_nj, 3),
            "consistent": self.consistent,
            "phases_match_timing": self.phases_match_timing,
        }


def build_energy_breakdown(tracer: SpanTracer, freq_hz: float = 100e6, *,
                           profile: Optional[PowerProfile] = None,
                           tr_reported_us: Optional[float] = None,
                           ) -> EnergyBreakdown:
    """Assemble the energy breakdown for the latest traced reconfig."""
    timing = build_tr_breakdown(tracer, freq_hz,
                                tr_reported_us=tr_reported_us)
    model = PowerModel(profile)
    contributions = model.contributions(tracer)

    def energy_phase(phase: Phase) -> EnergyPhase:
        return EnergyPhase(
            name=phase.name,
            start_cycle=phase.start_cycle,
            end_cycle=phase.end_cycle,
            component_nj=model.component_energy(
                contributions, phase.start_cycle, phase.end_cycle,
                freq_hz=freq_hz))

    window_nj = sum(model.component_energy(
        contributions, timing.window_start_cycle, timing.window_end_cycle,
        freq_hz=freq_hz).values())
    return EnergyBreakdown(
        module=timing.module,
        freq_hz=freq_hz,
        profile_version=(profile or DEFAULT_PROFILE).version,
        components=(profile or DEFAULT_PROFILE).components,
        phases=[energy_phase(p) for p in timing.tr_phases],
        context_phases=[energy_phase(p) for p in timing.context_phases],
        tr_window_nj=window_nj,
        timing=timing,
    )


def render_energy_breakdown(breakdown: EnergyBreakdown) -> str:
    """Human-readable table mirroring :func:`render_tr_breakdown`."""
    lines = [f"Reconfiguration energy breakdown — module "
             f"{breakdown.module!r} at {breakdown.freq_hz / 1e6:.0f} MHz "
             f"(profile {breakdown.profile_version})"]
    names = [p.name for p in breakdown.phases + breakdown.context_phases]
    width = max([len(name) for name in names] + [12])
    total = breakdown.total_nj or 1.0
    lines.append("")
    lines.append("  Tr window phases (boundaries identical to the Tr "
                 "latency breakdown):")
    for phase in breakdown.phases:
        share = 100.0 * phase.total_nj / total
        top = max(phase.component_nj, key=lambda k: phase.component_nj[k])
        lines.append(f"    {phase.name:<{width}}  {phase.cycles:>9,} cyc"
                     f"  {phase.total_nj / 1000.0:>10.2f} uJ  {share:5.1f}%"
                     f"  (top: {top})")
    lines.append(f"    {'sum':<{width}}  "
                 f"{breakdown.timing.phase_sum_cycles:>9,} cyc"
                 f"  {breakdown.total_nj / 1000.0:>10.2f} uJ  100.0%")
    lines.append("")
    lines.append("  per-component energy over the Tr window:")
    totals = breakdown.component_totals()
    for name in breakdown.components:
        nj = totals.get(name, 0.0)
        share = 100.0 * nj / total
        lines.append(f"    {name:<{width}}  {nj / 1000.0:>10.2f} uJ"
                     f"  {share:5.1f}%")
    extra = sorted(set(totals) - set(breakdown.components))
    for name in extra:  # pragma: no cover - future components
        lines.append(f"    {name:<{width}}  "
                     f"{totals[name] / 1000.0:>10.2f} uJ")
    mark = "OK" if breakdown.consistent else "MISMATCH"
    lines.append("")
    lines.append(
        f"  cross-check: phase sum vs window integral — {mark} "
        f"({breakdown.total_nj / 1000.0:.3f} uJ vs "
        f"{breakdown.tr_window_nj / 1000.0:.3f} uJ)")
    align = "OK" if breakdown.phases_match_timing else "MISMATCH"
    lines.append(f"  cross-check: phase boundaries vs Tr breakdown — {align} "
                 f"(cycle-for-cycle)")
    if breakdown.context_phases:
        lines.append("")
        lines.append("  outside the Tr window:")
        for phase in breakdown.context_phases:
            lines.append(f"    {phase.name:<{width}}  "
                         f"{phase.cycles:>9,} cyc  "
                         f"{phase.total_nj / 1000.0:>10.2f} uJ")
    return "\n".join(lines)


def traced_reconfiguration(module: Optional[str] = None, *,
                           controller: str = "rvcap",
                           mode: str = "interrupt") -> Tuple[Any, Any]:
    """Run one observed reference reconfiguration; returns (soc, result).

    Shared by ``repro power report``, the eval report's energy section
    and the CI determinism job, so they all describe the same run.
    """
    from repro.drivers.manager import ReconfigurationManager
    from repro.obs import Observability
    from repro.soc.builder import build_soc

    soc = build_soc()
    soc.attach_observability(Observability())
    manager = ReconfigurationManager(soc, controller=controller)
    manager.provision_sdcard()
    manager.init_rmodules()
    name = module or soc.registered_modules[0]
    result = manager.load_module(name, mode=mode)
    return soc, result
