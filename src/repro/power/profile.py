"""Versioned per-component power coefficients for the DPR stack.

The model is *declarative*: every dynamic activity the cycle-accurate
simulation already accounts for — ICAP word streaming, DMA bursts and
descriptors, DDR row activates and data bytes, hart retired
instructions, accelerator busy windows — maps onto one coefficient of a
:class:`PowerProfile`, and energy is the integral of those activities
over simulated time.  The unit system is chosen so integration is a
plain multiply: **1 mW x 1 us = 1 nJ**, and cycles convert to
microseconds at the SoC clock.

The default coefficients are calibrated against published 7-series DPR
measurements.  Nafkha & Louet ("Accurate Measurement of Power
Consumption Overhead During FPGA Dynamic Partial Reconfiguration",
PAPERS.md) measure a distinct, roughly constant power *overhead* for the
whole duration of an ICAP write burst on top of the board's idle floor;
the profile models exactly that shape: a static/idle floor
(:attr:`PowerProfile.floor_mw`) plus additive per-component increments
while each component is active.  Because phase boundaries come from the
same driver spans as the Tr latency breakdown, the energy breakdown is
self-consistent with the Tr breakdown cycle-for-cycle by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class PowerProfile:
    """One versioned, immutable set of model coefficients.

    All ``*_mw`` values are average power in milliwatts while the
    named activity is in flight; ``*_nj``/``*_pj`` values are
    per-event energies.  Idle coefficients form the always-on floor;
    active coefficients are *incremental* over that floor.
    """

    #: profile schema/calibration version (bump when coefficients move)
    version: str = "2026.1"

    # -- static -------------------------------------------------------
    #: fabric + PS leakage baseline, always burning
    static_mw: float = 92.0

    # -- ICAP (configuration port) ------------------------------------
    #: clocked-but-idle configuration logic (part of the floor)
    icap_idle_mw: float = 3.0
    #: increment while a session streams at 4 B/cycle (Nafkha & Louet's
    #: measured reconfiguration overhead band)
    icap_active_mw: float = 128.0

    # -- DMA engine ---------------------------------------------------
    #: increment while a transfer is in flight
    dma_active_mw: float = 36.0
    #: per AXI burst issued (address phase + FIFO churn)
    dma_burst_nj: float = 1.1
    #: per descriptor fetched/written back by the SG engine
    dma_descriptor_nj: float = 6.0
    #: engine burst granularity used to derive burst counts from bytes
    dma_burst_bytes: int = 128

    # -- DDR ----------------------------------------------------------
    #: refresh + self-refresh background (part of the floor)
    ddr_refresh_mw: float = 54.0
    #: per row activate (precharge + ACT command pair)
    ddr_activate_nj: float = 3.8
    #: per byte moved on the device bus
    ddr_pj_per_byte: float = 42.0
    #: DRAM row size used to derive activate counts from byte streams
    ddr_row_bytes: int = 8192

    # -- control processor (hart or host driver) ----------------------
    #: WFI/idle floor contribution
    cpu_idle_mw: float = 11.0
    #: increment while the driver/firmware is executing
    cpu_active_mw: float = 88.0
    #: per retired instruction (firmware-driven runs report instret)
    cpu_pj_per_instr: float = 310.0

    # -- reconfigurable accelerator -----------------------------------
    #: increment while an RM processes a frame
    accel_active_mw: float = 57.0

    # -- governor calibration knobs -----------------------------------
    #: conservative non-streaming cycles added to a reconfiguration
    #: duration estimate (decision, sync/desync, IRQ delivery)
    reconfig_overhead_cycles: int = 4096
    #: ICAP port width used to estimate stream cycles from pbit bytes
    icap_bytes_per_cycle: int = 4

    #: component names the model reports, in render order
    components: Tuple[str, ...] = field(
        default=("static", "cpu", "dma", "ddr", "icap", "accel"),
        repr=False)

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name in ("version", "components"):
                continue
            value = getattr(self, f.name)
            if value < 0:
                raise ValueError(f"PowerProfile.{f.name} must be >= 0")
        if self.icap_bytes_per_cycle < 1:
            raise ValueError("icap_bytes_per_cycle must be >= 1")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def floor_mw(self) -> float:
        """Always-on power: leakage + clocked-idle + DDR refresh."""
        return (self.static_mw + self.icap_idle_mw + self.ddr_refresh_mw
                + self.cpu_idle_mw)

    def ddr_stream_mw(self, freq_hz: float) -> float:
        """Average DDR dynamic power of a full-rate ICAP stream."""
        bytes_per_s = self.icap_bytes_per_cycle * freq_hz
        return bytes_per_s * self.ddr_pj_per_byte * 1e-9

    def reconfig_power_mw(self, freq_hz: float) -> float:
        """Incremental power (over the floor) while a DPR streams.

        The governor plans against this worst-case increment: ICAP
        active, DMA engine active, driver busy-waiting/servicing, and
        the DDR read stream feeding the port at 4 B/cycle.
        """
        return (self.icap_active_mw + self.dma_active_mw
                + self.cpu_active_mw + self.ddr_stream_mw(freq_hz))

    def payload_power_mw(self) -> float:
        """Incremental power while an RM crunches a payload frame."""
        return self.accel_active_mw + self.dma_active_mw + self.cpu_active_mw

    def reconfig_energy_nj(self, busy_cycles: int, freq_hz: float) -> float:
        """Dynamic energy of one reconfiguration of ``busy_cycles``."""
        busy_us = busy_cycles * 1e6 / freq_hz
        return self.reconfig_power_mw(freq_hz) * busy_us

    def payload_energy_nj(self, tc_us: float) -> float:
        """Dynamic energy of one payload run of ``tc_us``."""
        return self.payload_power_mw() * tc_us

    def estimate_reconfig_cycles(self, pbit_bytes: int) -> int:
        """Conservative duration estimate for governor admission."""
        stream = -(-pbit_bytes // self.icap_bytes_per_cycle)
        return stream + self.reconfig_overhead_cycles

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for f in fields(self):
            if f.name == "components":
                continue
            out[f.name] = getattr(self, f.name)
        out["floor_mw"] = self.floor_mw
        return out


#: the calibrated profile every CLI/report entry point defaults to
DEFAULT_PROFILE = PowerProfile()
