"""Cycle-integrated power model over the recorded obs trace.

:class:`PowerModel` turns a :class:`~repro.obs.tracer.SpanTracer` into
a modeled power-over-time step function and per-component energies.
Everything is computed *after* the simulation from spans the
instrumented components already record — the hot paths pay nothing
beyond the counters they maintain anyway, which is what keeps the
``sched_replay``/``table2_obs`` perf gates intact.

The accounting identity the CI job asserts is built in: the
power-series integral over any window equals the sum of the
per-component energies over the same window, because both are derived
from the same list of span contributions (interval power adders plus
per-event energies spread uniformly over their span; zero-length spans
contribute impulses).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import SpanTracer
from repro.power.profile import DEFAULT_PROFILE, PowerProfile

#: (start_cycle, end_cycle, component, add_mw, event_nj)
Contribution = Tuple[int, int, str, float, float]

#: tracks whose spans get lazy ``energy_nj`` annotations by default
ANNOTATED_TRACK_PREFIXES = ("driver", "icap", "sched", "dma.")


def collect_activity(soc: Any) -> Dict[str, int]:
    """Raw activity counters the model integrates, straight off the SoC.

    Every counter is maintained unconditionally by its component (no
    observability required), so this is also the cross-check surface
    for the span-derived energies.
    """
    out: Dict[str, int] = {}
    icap = getattr(soc, "icap", None)
    if icap is not None:
        out["icap_words"] = icap.words_consumed
        out["icap_busy_cycles"] = icap.busy_cycles
        out["icap_stall_cycles"] = icap.stall_cycles
    ddr = getattr(soc, "ddr", None)
    if ddr is not None:
        out["ddr_bytes_read"] = ddr.bytes_read
        out["ddr_bytes_written"] = ddr.bytes_written
        out["ddr_row_activates"] = ddr.row_activates
    rvcap = getattr(soc, "rvcap", None)
    dma = getattr(rvcap, "dma", None)
    if dma is not None:
        for channel in (dma.mm2s, dma.s2mm):
            out[f"dma_{channel.name}_bytes"] = channel.bytes_done
            out[f"dma_{channel.name}_bursts"] = channel.bursts_completed
            out[f"dma_{channel.name}_descriptors"] = \
                channel.descriptors_completed
    hart = getattr(soc, "hart", None)
    if hart is not None:
        activity = hart.power_activity()
        out["hart_cycles"] = activity["cycles"]
        out["hart_instret"] = activity["instret"]
    for index, accel in sorted(getattr(soc, "active_rms", {}).items()):
        if accel is not None:
            out[f"accel_rp{index}_busy_cycles"] = accel.busy_cycles
    return out


class PowerModel:
    """Derives power/energy views of a recorded trace from a profile."""

    def __init__(self, profile: Optional[PowerProfile] = None) -> None:
        self.profile = profile or DEFAULT_PROFILE

    # ------------------------------------------------------------------
    # span -> contribution mapping
    # ------------------------------------------------------------------
    def contributions(self, tracer: SpanTracer) -> List[Contribution]:
        """Interval power adders + per-event energies from the trace."""
        p = self.profile
        out: List[Contribution] = []
        for span in tracer.spans:
            end = span.end_cycle
            if end is None:
                continue
            track, name, start = span.track, span.name, span.start_cycle
            if track == "icap" and name == "session":
                out.append((start, end, "icap", p.icap_active_mw, 0.0))
            elif track.startswith("dma.") and name == "transfer":
                nbytes = int(span.args.get("bytes", 0))
                bursts = -(-nbytes // p.dma_burst_bytes) if nbytes else 0
                activates = (1 + (nbytes - 1) // p.ddr_row_bytes
                             if nbytes else 0)
                out.append((start, end, "dma", p.dma_active_mw,
                            bursts * p.dma_burst_nj + p.dma_descriptor_nj))
                out.append((start, end, "ddr", 0.0,
                            nbytes * p.ddr_pj_per_byte * 1e-3
                            + activates * p.ddr_activate_nj))
            elif track == "driver" and name in ("reconfig", "sd_load",
                                                "accel_run"):
                out.append((start, end, "cpu", p.cpu_active_mw, 0.0))
                if name == "accel_run":
                    out.append((start, end, "accel", p.accel_active_mw, 0.0))
        return out

    # ------------------------------------------------------------------
    # windowed per-component energy
    # ------------------------------------------------------------------
    def component_energy(self, contributions: List[Contribution],
                         start_cycle: int, end_cycle: int, *,
                         freq_hz: float) -> Dict[str, float]:
        """nJ per component over ``[start_cycle, end_cycle)``.

        The floor (leakage + clocked idle + refresh) is reported under
        ``static``; each contribution is attributed by overlap, and a
        per-event energy by the overlapped fraction of its span (whole
        event when the span has zero length and starts inside the
        window).
        """
        us_per_cycle = 1e6 / freq_hz
        window = max(0, end_cycle - start_cycle)
        out: Dict[str, float] = {name: 0.0 for name in self.profile.components}
        out["static"] = self.profile.floor_mw * window * us_per_cycle
        for c_start, c_end, component, add_mw, event_nj in contributions:
            duration = c_end - c_start
            if duration == 0:
                if event_nj and start_cycle <= c_start < end_cycle:
                    out[component] = out.get(component, 0.0) + event_nj
                continue
            overlap = min(c_end, end_cycle) - max(c_start, start_cycle)
            if overlap <= 0:
                continue
            energy = add_mw * overlap * us_per_cycle
            if event_nj:
                energy += event_nj * overlap / duration
            out[component] = out.get(component, 0.0) + energy
        return out

    # ------------------------------------------------------------------
    # power-over-time step series
    # ------------------------------------------------------------------
    def series(self, tracer: SpanTracer, *,
               freq_hz: float) -> List[Tuple[int, float]]:
        """Modeled instantaneous power as (cycle, mW) step samples."""
        contributions = self.contributions(tracer)
        return self._series(contributions, tracer, freq_hz)

    def _trace_extent(self, tracer: SpanTracer) -> Tuple[int, int]:
        lo: Optional[int] = None
        hi = 0
        for span in tracer.spans:
            lo = span.start_cycle if lo is None else min(lo, span.start_cycle)
            if span.end_cycle is not None:
                hi = max(hi, span.end_cycle)
        for event in tracer.instants:
            lo = event.cycle if lo is None else min(lo, event.cycle)
            hi = max(hi, event.cycle)
        return (lo or 0), hi

    def _series(self, contributions: List[Contribution],
                tracer: SpanTracer,
                freq_hz: float) -> List[Tuple[int, float]]:
        us_per_cycle = 1e6 / freq_hz
        lo, hi = self._trace_extent(tracer)
        deltas: Dict[int, float] = {lo: 0.0, hi: 0.0}
        for start, end, _component, add_mw, event_nj in contributions:
            duration = end - start
            if duration == 0:
                continue  # impulse: carried by the integrator, not the steps
            mw = add_mw + event_nj / (duration * us_per_cycle)
            deltas[start] = deltas.get(start, 0.0) + mw
            deltas[end] = deltas.get(end, 0.0) - mw
        level = self.profile.floor_mw
        out: List[Tuple[int, float]] = []
        for cycle in sorted(deltas):
            level += deltas[cycle]
            if out and out[-1][0] == cycle:
                out[-1] = (cycle, level)
            else:
                out.append((cycle, level))
        return out

    # ------------------------------------------------------------------
    # lazy span annotation + exporter injection
    # ------------------------------------------------------------------
    def annotate(self, tracer: SpanTracer, *, freq_hz: float,
                 track_prefixes: Tuple[str, ...] = ANNOTATED_TRACK_PREFIXES,
                 ) -> int:
        """Attach ``energy_nj`` to completed spans on instrumented tracks.

        Runs after the simulation and writes through the spans' lazy
        args dicts (the PR-8 fast path: argless hot spans only
        materialize a dict here, never on the recording path).  A
        span's energy is the whole-SoC modeled energy integrated over
        its interval.  Returns the number of spans annotated.
        """
        integrator = PowerIntegrator(self, tracer, freq_hz=freq_hz)
        annotated = 0
        for span in tracer.spans:
            if span.end_cycle is None:
                continue
            track = span.track
            if not track.startswith(track_prefixes):
                continue
            span.args["energy_nj"] = round(
                integrator.energy_nj(span.start_cycle, span.end_cycle), 3)
            annotated += 1
        return annotated

    def inject_power_track(self, tracer: SpanTracer, *,
                           freq_hz: float) -> int:
        """Materialize the ``power_mw`` counter track and VCD signal.

        Chrome-trace exports render the counter samples as a "C"
        counter track; the VCD exporter renders the integer-mW signal.
        Returns the number of step samples injected.
        """
        series = self.series(tracer, freq_hz=freq_hz)
        for cycle, mw in series:
            tracer.count("power_mw", cycle, round(mw, 3))
            tracer.signal("power_mw", cycle, int(round(mw)))
        return len(series)

    def record_metrics(self, obs: Any, tracer: SpanTracer, *,
                       freq_hz: float) -> Dict[str, float]:
        """Fold trace-derived energies into the metrics registry.

        Creates fleet-mergeable instruments: integer-nJ counters (sum
        across shards), a per-reconfiguration energy histogram
        (bucket-wise add) and a peak-power gauge (max reduce).
        Returns the per-component energy dict it recorded.
        """
        contributions = self.contributions(tracer)
        lo, hi = self._trace_extent(tracer)
        energies = self.component_energy(contributions, lo, hi,
                                         freq_hz=freq_hz)
        metrics = obs.metrics
        total = 0.0
        for component in sorted(energies):
            nj = energies[component]
            total += nj
            metrics.counter(
                "power_energy_nj", "modeled energy per component (nJ)",
                {"component": component}).inc(int(round(nj)))
        metrics.counter(
            "power_energy_nj_total", "total modeled energy (nJ)",
        ).inc(int(round(total)))
        hist = metrics.histogram(
            "power_reconfig_energy_nj",
            "modeled whole-SoC energy per reconfiguration (nJ)")
        integrator = PowerIntegrator(self, tracer, freq_hz=freq_hz,
                                     contributions=contributions)
        for span in tracer.find("driver", "tr_window"):
            if span.end_cycle is not None:
                hist.record(int(round(integrator.energy_nj(
                    span.start_cycle, span.end_cycle))))
        peak = max((mw for _cycle, mw in
                    self._series(contributions, tracer, freq_hz)),
                   default=self.profile.floor_mw)
        metrics.gauge("power_peak_mw",
                      "peak modeled instantaneous power (mW)").set(
            round(peak, 3))
        return energies


class PowerIntegrator:
    """Prefix-sum integrator over the modeled power step series.

    Spans are annotated in one O(series) build plus O(log n) per query
    instead of walking every contribution per span.
    """

    def __init__(self, model: PowerModel, tracer: SpanTracer, *,
                 freq_hz: float,
                 contributions: Optional[List[Contribution]] = None) -> None:
        self._us_per_cycle = 1e6 / freq_hz
        contribs = (model.contributions(tracer)
                    if contributions is None else contributions)
        series = model._series(contribs, tracer, freq_hz)
        self._cycles = [cycle for cycle, _mw in series]
        self._levels = [mw for _cycle, mw in series]
        self._floor = model.profile.floor_mw
        # prefix[i] = nJ accumulated from series start to cycles[i]
        prefix = [0.0]
        for i in range(1, len(series)):
            width = self._cycles[i] - self._cycles[i - 1]
            prefix.append(prefix[-1]
                          + self._levels[i - 1] * width * self._us_per_cycle)
        self._prefix = prefix
        #: zero-length contributions as (cycle, nJ) impulses
        self._impulses = sorted(
            (start, event_nj) for start, end, _c, _mw, event_nj in contribs
            if end == start and event_nj)
        self._impulse_cycles = [cycle for cycle, _nj in self._impulses]
        impulse_prefix = [0.0]
        for _cycle, nj in self._impulses:
            impulse_prefix.append(impulse_prefix[-1] + nj)
        self._impulse_prefix = impulse_prefix

    def _level_at(self, cycle: int) -> float:
        index = bisect_right(self._cycles, cycle) - 1
        return self._levels[index] if index >= 0 else self._floor

    def _cumulative(self, cycle: int) -> float:
        """nJ from series start up to ``cycle`` (floor before start)."""
        if not self._cycles:
            return 0.0
        index = bisect_right(self._cycles, cycle) - 1
        if index < 0:
            return (cycle - self._cycles[0]) * self._us_per_cycle * self._floor
        partial = (cycle - self._cycles[index]) * self._us_per_cycle \
            * self._levels[index]
        return self._prefix[index] + partial

    def energy_nj(self, start_cycle: int, end_cycle: int) -> float:
        """Whole-SoC modeled energy over ``[start_cycle, end_cycle)``."""
        energy = self._cumulative(end_cycle) - self._cumulative(start_cycle)
        lo = bisect_right(self._impulse_cycles, start_cycle - 1)
        hi = bisect_right(self._impulse_cycles, end_cycle - 1)
        return energy + self._impulse_prefix[hi] - self._impulse_prefix[lo]
