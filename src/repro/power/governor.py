"""Peak-power governor: defer reconfigurations to honor a power cap.

A reconfiguration's instantaneous power draw is a fixed step (the ICAP
streams at 4 B/cycle or not at all — Nafkha & Louet's measurements show
a flat overhead band for the whole write burst), so a cap below
``floor + reconfig_power`` can never be met instant-by-instant by a
single serialized port.  What a deployment actually constrains is the
*windowed average* (thermal mass / RAPL-style enforcement), and that is
what this governor enforces exactly: over every sliding window of
``window_us``, the modeled average power must stay at or below
``cap_mw``.

Admission control is exact, not heuristic.  With committed busy
intervals all in the past and a candidate reconfiguration of duration
``d`` starting at ``s``, the worst window is the one ending at
``s + d`` (busy time within a window only grows while the candidate
streams, and only shrinks as the window slides past older intervals).
So the candidate is safe iff::

    busy((s + d - W, s]) <= f * W - d,   f = (cap - floor) / p_dyn

and the earliest safe ``s`` is found by binary search (the left side is
non-increasing in ``s``).  The committed-interval trace doubles as the
compliance record: :meth:`power_samples` evaluates the windowed power
at every interval edge — the points where the maximum is attained — so
``max_window_power_mw() <= cap_mw`` is the assertable "cap never
exceeded" contract the replay tests check.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SchedulerError
from repro.power.profile import DEFAULT_PROFILE, PowerProfile


class PowerGovernor:
    """Sliding-window average-power admission control for the ICAP."""

    def __init__(self, cap_mw: float, *,
                 profile: Optional[PowerProfile] = None,
                 window_us: float = 200.0,
                 freq_hz: float = 100e6) -> None:
        if window_us <= 0:
            raise SchedulerError("power window_us must be positive")
        self.profile = profile or DEFAULT_PROFILE
        self.cap_mw = cap_mw
        self.window_us = window_us
        self.freq_hz = freq_hz
        self.window_cycles = max(1, int(window_us * freq_hz / 1e6))
        self.floor_mw = self.profile.floor_mw
        self.dynamic_mw = self.profile.reconfig_power_mw(freq_hz)
        if cap_mw <= self.floor_mw:
            raise SchedulerError(
                f"peak_power_mw={cap_mw} is at or below the modeled idle "
                f"floor ({self.floor_mw:.1f} mW); no schedule can meet it")
        #: fraction of any window the reconfig power may occupy
        self.budget_fraction = min(
            1.0, (cap_mw - self.floor_mw) / self.dynamic_mw)
        #: committed (start, end) busy intervals, chronological,
        #: non-overlapping (the ICAP is serialized)
        self._intervals: List[Tuple[int, int]] = []
        self.deferrals = 0
        self.deferred_cycles = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _busy_before(self, start: int, duration: int) -> int:
        """Committed busy cycles inside ``(start + d - W, start]``."""
        lo = start + duration - self.window_cycles
        busy = 0
        for a, b in self._intervals:
            overlap = min(b, start) - max(a, lo)
            if overlap > 0:
                busy += overlap
        return busy

    def admission_delay(self, now: int, duration: int) -> int:
        """Cycles to defer a ``duration``-cycle reconfig starting now.

        Raises :class:`SchedulerError` when the cap is infeasible for
        one atomic reconfiguration (the budget share of a window is
        shorter than the reconfiguration itself) — raise the cap or
        widen the averaging window.
        """
        budget = int(self.budget_fraction * self.window_cycles)
        if duration > budget:
            raise SchedulerError(
                f"peak_power_mw={self.cap_mw} infeasible: one "
                f"reconfiguration needs {duration} busy cycles but the "
                f"cap allows only {budget} per {self.window_us:.0f} us "
                f"window; raise the cap or widen power_window_us")
        allowance = budget - duration
        if self._busy_before(now, duration) <= allowance:
            return 0
        # earliest safe start: _busy_before is non-increasing in s
        # (all committed intervals lie in the past), so binary search
        lo, hi = now, max(b for _a, b in self._intervals) \
            + self.window_cycles - duration
        while lo < hi:
            mid = (lo + hi) // 2
            if self._busy_before(mid, duration) <= allowance:
                hi = mid
            else:
                lo = mid + 1
        return lo - now

    def commit(self, start: int, end: int) -> None:
        """Record the actual busy interval of a served reconfiguration."""
        if end <= start:
            return
        self._intervals.append((start, end))
        # prune intervals that can no longer intersect a future window
        horizon = end - 4 * self.window_cycles
        if self._intervals[0][1] < horizon:
            self._intervals = [(a, b) for a, b in self._intervals
                               if b >= horizon]

    def note_deferral(self, cycles: int) -> None:
        self.deferrals += 1
        self.deferred_cycles += cycles

    # ------------------------------------------------------------------
    # compliance trace
    # ------------------------------------------------------------------
    def _window_busy(self, end: int) -> int:
        lo = end - self.window_cycles
        busy = 0
        for a, b in self._intervals:
            overlap = min(b, end) - max(a, lo)
            if overlap > 0:
                busy += overlap
        return busy

    def power_samples(self) -> List[Tuple[int, float]]:
        """(cycle, windowed-average mW) at every critical window end.

        Windowed busy time is piecewise linear with maxima at interval
        end edges; sampling starts, ends and trailing edges bounds the
        whole trace.
        """
        points: List[int] = []
        for a, b in self._intervals:
            points.extend((a, b, b + self.window_cycles))
        samples = []
        for cycle in sorted(set(points)):
            busy = self._window_busy(cycle)
            mw = self.floor_mw + self.dynamic_mw * busy / self.window_cycles
            samples.append((cycle, round(mw, 3)))
        return samples

    def max_window_power_mw(self) -> float:
        """Peak of the modeled windowed power-over-time trace."""
        samples = self.power_samples()
        return max((mw for _cycle, mw in samples), default=self.floor_mw)
