"""Cycle-integrated power & energy accounting (see docs/OBSERVABILITY.md).

The package layers a declarative power model over the obs traces:

* :mod:`repro.power.profile` — versioned per-component coefficients;
* :mod:`repro.power.model` — span contributions -> power series,
  per-component energies, lazy ``energy_nj`` span annotation and the
  ``power_mw`` exporter track;
* :mod:`repro.power.report` — the reconfiguration-energy breakdown,
  phase-aligned with the Tr latency breakdown;
* :mod:`repro.power.governor` — sliding-window peak-power admission
  control for the power-aware scheduler.
"""

from repro.power.governor import PowerGovernor
from repro.power.model import (
    ANNOTATED_TRACK_PREFIXES,
    PowerIntegrator,
    PowerModel,
    collect_activity,
)
from repro.power.profile import DEFAULT_PROFILE, PowerProfile
from repro.power.report import (
    EnergyBreakdown,
    EnergyPhase,
    build_energy_breakdown,
    render_energy_breakdown,
    traced_reconfiguration,
)

__all__ = [
    "ANNOTATED_TRACK_PREFIXES",
    "DEFAULT_PROFILE",
    "EnergyBreakdown",
    "EnergyPhase",
    "PowerGovernor",
    "PowerIntegrator",
    "PowerModel",
    "PowerProfile",
    "build_energy_breakdown",
    "collect_activity",
    "render_energy_breakdown",
    "traced_reconfiguration",
]
